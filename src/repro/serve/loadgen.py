"""``repro loadgen``: replay mixed traffic against a running server.

The generator builds a deterministic request mix — the paper's smoke
grid (Table 1 benchmarks at small depths, measure + optimizer
baselines), a stream of generated fuzz workloads, a few inline-source
compiles, and some deliberately broken programs the admission lint must
bounce — and replays it from ``clients`` concurrent persistent
connections in two phases:

* **cold** — every distinct request, each sent ``duplicates`` times in
  a shuffled order, so concurrent identical requests race and the
  single-flight layer must collapse them;
* **warm** — every distinct request once more; by now everything is
  journaled/cached, so the server must answer without recompiling.

Afterwards the generator checks the service's contract end to end:

* zero failed rows (and every expected-reject bounced with 422);
* at most one compile execution per distinct key (the dedupe proof,
  read from the server's own ``/metrics`` gauges);
* warm-phase hit rate above ``hit_rate_floor``;
* ``/metrics`` reports latency quantiles (p50/p99) per endpoint;
* measurement rows bit-identical (modulo volatile keys) to a clean
  serial no-server run of the same grid points.
"""

from __future__ import annotations

import asyncio
import random
import time
from typing import Any, Dict, List, Optional, Tuple

from ..benchsuite.parallel import (
    MEASURE,
    OPTIMIZE,
    GridTask,
    SerialBackend,
    paper_grid,
    stable_rows,
)
from ..benchsuite.programs import is_unsized, register_source
from ..benchsuite.runner import BenchmarkRunner
from ..config import CompilerConfig
from ..fuzz.generator import fuzz_name
from .http import Client
from .service import inline_name

#: a tiny well-formed inline program (lints clean, compiles fast)
INLINE_OK = """\
fun main(x: uint) -> uint {
  let y <- x + 1;
  return y;
}
"""

#: rejected at admission: `do stuff` is not Tower syntax, the parse fails
INLINE_PARSE_ERROR = "fun main() { do stuff }\n"

#: parses, but the body does not typecheck (uint + bool)
INLINE_TYPE_ERROR = """\
fun main(x: uint) -> uint {
  let b <- x == x;
  let y <- x + b;
  return y;
}
"""


def build_traffic(
    depths: List[int],
    fuzz_count: int = 25,
    fuzz_seed: int = 0,
) -> List[Dict[str, Any]]:
    """The distinct requests of one replay (before duplication).

    Each entry: ``{path, payload, expect}`` with ``expect`` one of
    ``ok`` (a 200 with a measurement row) or ``reject`` (a 422 from
    admission).  ``ok`` entries also carry the grid-task fields the
    serial baseline re-derives.
    """
    requests: List[Dict[str, Any]] = []
    for task in paper_grid("smoke", depths):
        payload: Dict[str, Any] = {
            "name": task.name,
            "depth": task.depth,
            "optimization": task.optimization,
        }
        if task.optimizer:
            payload["optimizer"] = task.optimizer
            payload["params"] = dict(task.params)
        requests.append(
            {"path": "/measure", "payload": payload, "expect": "ok"}
        )
    for index in range(fuzz_count):
        name = fuzz_name(fuzz_seed, index)
        requests.append(
            {
                "path": "/measure",
                "payload": {"name": name, "optimization": "none"},
                "expect": "ok",
            }
        )
    requests.append(
        {
            "path": "/compile",
            "payload": {"source": INLINE_OK, "depth": None},
            "expect": "ok",
        }
    )
    for bad in (INLINE_PARSE_ERROR, INLINE_TYPE_ERROR):
        requests.append(
            {
                "path": "/compile",
                "payload": {"source": bad},
                "expect": "reject",
            }
        )
    requests.append(
        {
            "path": "/lint",
            "payload": {"source": INLINE_OK},
            "expect": "ok",
        }
    )
    return requests


def _baseline_task(request: Dict[str, Any]) -> Optional[GridTask]:
    """The grid task a successful request measures (None: not a measure)."""
    payload = request["payload"]
    if request["path"] == "/measure":
        name = payload["name"]
        depth = None if is_unsized(name) else payload.get("depth")
        optimizer = payload.get("optimizer")
        if optimizer is None:
            return GridTask(
                MEASURE, name, depth, payload.get("optimization", "none")
            )
        return GridTask(
            OPTIMIZE,
            name,
            depth,
            payload.get("optimization", "none"),
            optimizer,
            tuple(sorted((payload.get("params") or {}).items())),
        )
    if request["path"] == "/compile" and request["expect"] == "ok":
        source = payload["source"]
        entry = payload.get("entry") or "main"
        name = inline_name(source, entry)
        register_source(name, source, entry)
        return GridTask(
            MEASURE,
            name,
            payload.get("depth"),
            payload.get("optimization", "none"),
        )
    return None


async def _drive(
    host: str,
    port: int,
    work: List[Tuple[int, Dict[str, Any]]],
    clients: int,
) -> List[Tuple[int, int, Any]]:
    """Replay (request-index, request) pairs from N concurrent clients."""
    queue: asyncio.Queue = asyncio.Queue()
    for item in work:
        queue.put_nowait(item)
    results: List[Tuple[int, int, Any]] = []

    async def worker() -> None:
        async with Client(host, port) as client:
            while True:
                try:
                    index, request = queue.get_nowait()
                except asyncio.QueueEmpty:
                    return
                status, payload = await client.post(
                    request["path"], request["payload"]
                )
                results.append((index, status, payload))

    await asyncio.gather(*[worker() for _ in range(clients)])
    return results


def _check_results(
    requests: List[Dict[str, Any]],
    results: List[Tuple[int, int, Any]],
    phase: str,
    problems: List[str],
) -> None:
    for index, status, payload in results:
        request = requests[index]
        expect = request["expect"]
        if expect == "reject":
            if status != 422:
                problems.append(
                    f"{phase}: expected 422 for {request['path']} "
                    f"(bad program), got {status}: {payload}"
                )
        elif status != 200:
            problems.append(
                f"{phase}: expected 200 for {request['path']} "
                f"{request['payload']}, got {status}: {payload}"
            )
        elif isinstance(payload, dict) and payload.get("row", {}).get(
            "failed"
        ):
            problems.append(
                f"{phase}: failed row for {request['payload']}: "
                f"{payload['row']}"
            )


async def _replay(
    host: str,
    port: int,
    requests: List[Dict[str, Any]],
    clients: int,
    duplicates: int,
    seed: int,
    hit_rate_floor: float,
) -> Dict[str, Any]:
    problems: List[str] = []
    rng = random.Random(seed)

    cold_work = [
        (index, request)
        for index, request in enumerate(requests)
        for _ in range(duplicates)
    ]
    rng.shuffle(cold_work)
    started = time.perf_counter()
    cold = await _drive(host, port, cold_work, clients)
    cold_seconds = time.perf_counter() - started
    _check_results(requests, cold, "cold", problems)

    warm_work = list(enumerate(requests))
    rng.shuffle(warm_work)
    started = time.perf_counter()
    warm = await _drive(host, port, warm_work, clients)
    warm_seconds = time.perf_counter() - started
    _check_results(requests, warm, "warm", problems)

    # warm-phase hit rate: a "hit" is a row served without recompiling
    warm_rows = [
        payload["row"]
        for index, status, payload in warm
        if status == 200
        and isinstance(payload, dict)
        and isinstance(payload.get("row"), dict)
    ]
    warm_hits = sum(
        bool(
            row.get("cached")
            or row.get("journal_resumed")
            or row.get("prefix_cached")
        )
        for row in warm_rows
    )
    hit_rate = warm_hits / len(warm_rows) if warm_rows else None
    if warm_rows and hit_rate < hit_rate_floor:
        problems.append(
            f"warm hit rate {hit_rate:.3f} below floor {hit_rate_floor}"
        )

    async with Client(host, port) as client:
        status, metrics = await client.get("/metrics")
        if status != 200:
            problems.append(f"/metrics returned {status}")
            metrics = {}
        status, cache_stats = await client.get("/cache/stats")
        if status != 200:
            problems.append(f"/cache/stats returned {status}")
            cache_stats = {}

    gauges = (metrics or {}).get("gauges", {})
    max_per_key = gauges.get("max_compiles_per_key")
    if max_per_key is None or max_per_key > 1:
        problems.append(
            f"single-flight violated: max_compiles_per_key={max_per_key}"
        )
    endpoints = (metrics or {}).get("endpoints", {})
    for label in ("measure",):
        stats = endpoints.get(label)
        if not stats or stats.get("p99_seconds") is None:
            problems.append(f"/metrics has no p99 for endpoint {label!r}")

    # the server's own view of each request, for the serial baseline
    latest: Dict[int, Any] = {}
    for index, status, payload in cold + warm:
        if status == 200 and isinstance(payload, dict) and "row" in payload:
            latest[index] = payload["row"]

    return {
        "problems": problems,
        "metrics": metrics,
        "cache_stats": cache_stats,
        "rows_by_request": latest,
        "cold": {"requests": len(cold_work), "seconds": cold_seconds},
        "warm": {
            "requests": len(warm_work),
            "seconds": warm_seconds,
            "hit_rate": hit_rate,
        },
    }


def _serial_baseline(
    requests: List[Dict[str, Any]],
    rows_by_request: Dict[int, Any],
    config: CompilerConfig,
    problems: List[str],
) -> int:
    """Recompute every measured point serially and demand bit-identity."""
    pairs: List[Tuple[GridTask, Dict[str, Any]]] = []
    for index, request in enumerate(requests):
        task = _baseline_task(request)
        if task is None:
            continue
        row = rows_by_request.get(index)
        if row is None:
            continue  # already reported as a problem upstream
        pairs.append((task, row))
    runner = BenchmarkRunner(config)
    baseline = SerialBackend().run(runner, [task for task, _ in pairs])
    for (task, served), computed in zip(pairs, baseline):
        want = stable_rows([computed])[0]
        got = stable_rows([served])[0]
        if want != got:
            diff = {
                key: (want.get(key), got.get(key))
                for key in sorted(set(want) | set(got))
                if want.get(key) != got.get(key)
            }
            problems.append(
                f"row mismatch vs serial baseline for {task.label()}: {diff}"
            )
    return len(pairs)


def run_loadgen(
    host: str,
    port: int,
    config: Optional[CompilerConfig] = None,
    depths: Optional[List[int]] = None,
    fuzz_count: int = 25,
    clients: int = 8,
    duplicates: int = 2,
    seed: int = 0,
    hit_rate_floor: float = 0.9,
    check_serial: bool = True,
) -> Dict[str, Any]:
    """Replay the mix and verify the contract; ``report["ok"]`` is the verdict."""
    if clients < 2:
        raise ValueError("loadgen needs at least 2 concurrent clients")
    config = config or CompilerConfig()
    requests = build_traffic(depths or [1, 2], fuzz_count=fuzz_count)
    report = asyncio.run(
        _replay(
            host,
            port,
            requests,
            clients=clients,
            duplicates=duplicates,
            seed=seed,
            hit_rate_floor=hit_rate_floor,
        )
    )
    problems: List[str] = report["problems"]
    rows_by_request = report.pop("rows_by_request")
    if check_serial and not problems:
        report["baseline_points"] = _serial_baseline(
            requests, rows_by_request, config, problems
        )
    report["distinct_requests"] = len(requests)
    report["clients"] = clients
    report["duplicates"] = duplicates
    report["ok"] = not problems
    return report
