"""The ``repro serve`` application: routing, lifecycle, signals.

:class:`ReproServer` wires the HTTP framing layer to the endpoint
handlers around one shared :class:`CompileService`, and owns the
lifecycle: bind, serve, drain, close.  ``POST /shutdown`` (and SIGINT /
SIGTERM under :func:`serve_main`) trigger a clean stop — in-flight
requests finish, the batch consumer drains, and the request journal is
closed with no torn tail.
"""

from __future__ import annotations

import asyncio
import sys
import time
from typing import Any, Awaitable, Callable, Dict, Optional, Tuple

from ..benchsuite.cache import ArtifactCache
from ..benchsuite.resilience import RetryPolicy
from ..config import CompilerConfig
from . import handlers
from .http import render_response, serve_connection
from .service import DEFAULT_BATCH_WINDOW, CompileService

EndpointFn = Callable[
    [CompileService, Dict[str, Any]], Awaitable[Tuple[int, Any]]
]


class ReproServer:
    """One service instance bound to a host/port."""

    #: (method, path) -> (metric label, handler)
    ROUTES: Dict[Tuple[str, str], Tuple[str, EndpointFn]] = {
        ("POST", "/compile"): ("compile", handlers.handle_compile),
        ("POST", "/measure"): ("measure", handlers.handle_measure),
        ("POST", "/lint"): ("lint", handlers.handle_lint),
        ("GET", "/cache/stats"): ("cache_stats", handlers.handle_cache_stats),
        ("GET", "/metrics"): ("metrics", handlers.handle_metrics),
        ("GET", "/healthz"): ("healthz", handlers.handle_healthz),
    }

    def __init__(
        self,
        config: Optional[CompilerConfig] = None,
        cache: Optional[ArtifactCache] = None,
        host: str = "127.0.0.1",
        port: int = 0,
        jobs: int = 1,
        policy: Optional[RetryPolicy] = None,
        batch_window: float = DEFAULT_BATCH_WINDOW,
        cache_max_bytes: Optional[int] = None,
    ) -> None:
        self.host = host
        self.port = port
        self.service = CompileService(
            config=config,
            cache=cache,
            jobs=jobs,
            policy=policy,
            batch_window=batch_window,
            cache_max_bytes=cache_max_bytes,
        )
        self._server: Optional[asyncio.base_events.Server] = None
        self._shutdown = asyncio.Event()

    # -------------------------------------------------------------- routing
    async def handle(
        self, method: str, path: str, body: bytes
    ) -> Tuple[int, Any]:
        """Dispatch one request; every response is timed into /metrics."""
        start = time.perf_counter()
        if method == "POST" and path == "/shutdown":
            self._shutdown.set()
            status, payload = 200, {"shutting_down": True}
            self.service.metrics.observe("shutdown", 0.0, status)
            return status, payload
        route = self.ROUTES.get((method, path))
        if route is None:
            known = {p for (_m, p) in self.ROUTES} | {"/shutdown"}
            if path in known:
                return 405, {"error": f"{method} not allowed on {path}"}
            return 404, {"error": f"no such endpoint: {path}"}
        label, endpoint = route
        try:
            decoded = handlers.decode_body(body)
            status, payload = await endpoint(self.service, decoded)
        except handlers.RequestError as exc:
            status, payload = 400, {"error": str(exc)}
        except asyncio.CancelledError:
            raise
        except Exception as exc:
            status = 500
            payload = {"error": f"internal error: {type(exc).__name__}: {exc}"}
        self.service.metrics.observe(
            label, time.perf_counter() - start, status
        )
        return status, payload

    # ------------------------------------------------------------ lifecycle
    async def start(self) -> None:
        await self.service.start()
        self._server = await asyncio.start_server(
            self._on_connection, self.host, self.port
        )
        self.port = self._server.sockets[0].getsockname()[1]

    async def _on_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        if self._shutdown.is_set():
            writer.write(
                render_response(
                    503, {"error": "shutting down"}, keep_alive=False
                )
            )
            try:
                await writer.drain()
            finally:
                writer.close()
            return
        await serve_connection(reader, writer, self.handle)

    async def wait_shutdown(self) -> None:
        await self._shutdown.wait()

    def request_shutdown(self) -> None:
        self._shutdown.set()

    async def close(self) -> None:
        """Stop accepting, finish in-flight work, close the journal."""
        self._shutdown.set()
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None
        await self.service.close()

    async def __aenter__(self) -> "ReproServer":
        await self.start()
        return self

    async def __aexit__(self, *exc_info) -> None:
        await self.close()


async def run_server(server: ReproServer, banner: bool = True) -> None:
    """Serve until shutdown is requested (endpoint or signal)."""
    import signal

    await server.start()
    loop = asyncio.get_running_loop()
    for signum in (signal.SIGINT, signal.SIGTERM):
        try:
            loop.add_signal_handler(signum, server.request_shutdown)
        except (NotImplementedError, RuntimeError):  # non-unix / nested loop
            pass
    if banner:
        print(
            f"repro serve listening on http://{server.host}:{server.port}",
            file=sys.stderr,
            flush=True,
        )
    try:
        await server.wait_shutdown()
    finally:
        await server.close()


def serve_main(
    config: Optional[CompilerConfig] = None,
    cache_dir: Optional[str] = None,
    host: str = "127.0.0.1",
    port: int = 8351,
    jobs: int = 1,
    policy: Optional[RetryPolicy] = None,
    batch_window: float = DEFAULT_BATCH_WINDOW,
    cache_max_bytes: Optional[int] = None,
) -> int:
    """The blocking entry point behind ``repro serve``."""
    cache = ArtifactCache(cache_dir) if cache_dir else None
    server = ReproServer(
        config=config,
        cache=cache,
        host=host,
        port=port,
        jobs=jobs,
        policy=policy,
        batch_window=batch_window,
        cache_max_bytes=cache_max_bytes,
    )
    try:
        asyncio.run(run_server(server))
    except KeyboardInterrupt:
        pass
    return 0
