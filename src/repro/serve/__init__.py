"""Compilation-as-a-service: ``repro serve`` and its load generator.

A long-running asyncio HTTP/JSON server over the existing benchsuite
machinery (ROADMAP item 1).  The package splits along the service's
layers:

* :mod:`~repro.serve.http` — stdlib HTTP/1.1 framing (server loop and
  persistent-connection client; no third-party HTTP stack);
* :mod:`~repro.serve.dedupe` — single-flight coalescing of identical
  concurrent requests;
* :mod:`~repro.serve.metrics` — per-endpoint counters, gauges and
  latency quantiles behind ``GET /metrics``;
* :mod:`~repro.serve.service` — admission lint, micro-batching onto the
  execution backend, journal-backed durability, bounded shared cache;
* :mod:`~repro.serve.handlers` — the endpoint logic and its
  lint-exit-code → HTTP-status contract;
* :mod:`~repro.serve.app` — routing, lifecycle and signals;
* :mod:`~repro.serve.loadgen` — deterministic mixed-traffic replay that
  asserts the service contract end to end (``repro loadgen``).
"""

from .app import ReproServer, run_server, serve_main
from .dedupe import SingleFlight
from .http import Client
from .loadgen import build_traffic, run_loadgen
from .metrics import Metrics
from .service import CompileService, inline_name

__all__ = [
    "Client",
    "CompileService",
    "Metrics",
    "ReproServer",
    "SingleFlight",
    "build_traffic",
    "inline_name",
    "run_loadgen",
    "run_server",
    "serve_main",
]
