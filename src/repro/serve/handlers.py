"""Endpoint logic of ``repro serve``.

Every handler takes the shared :class:`~repro.serve.service.CompileService`
plus the decoded JSON request body and returns ``(status, payload)``.
The status discipline mirrors the linter's exit-code contract
(``repro lint``: 0 clean / 1 error findings / 2 usage / 3 internal):

========  ==========================================================
status    meaning
========  ==========================================================
200       clean (warnings, if any, ride along in the payload)
422       the *program* is at fault — admission lint found errors
400       the *request* is at fault — missing/ill-typed fields,
          unknown benchmark, bad pipeline spec (exit 2's analog)
500       the *service* is at fault — handler defect or a failure
          row out of the execution backend (exit 3's analog)
========  ==========================================================
"""

from __future__ import annotations

import json
from typing import Any, Dict, Optional, Tuple

from ..benchsuite.parallel import MEASURE, OPTIMIZE, GridTask
from ..benchsuite.programs import is_unsized
from ..circopt.base import optimizer_names
from ..passes import canonical_pipeline
from .service import CompileService

Response = Tuple[int, Any]


class RequestError(Exception):
    """A malformed request body (becomes a 400)."""


def _field(
    body: Dict[str, Any],
    name: str,
    kind,
    required: bool = False,
    default: Any = None,
) -> Any:
    value = body.get(name, default)
    if value is None:
        if required:
            raise RequestError(f"missing required field {name!r}")
        return None
    if kind is int and isinstance(value, bool):  # bool is an int subtype
        raise RequestError(f"field {name!r} must be {kind.__name__}")
    if not isinstance(value, kind):
        raise RequestError(f"field {name!r} must be {kind.__name__}")
    return value


def decode_body(raw: bytes) -> Dict[str, Any]:
    if not raw:
        return {}
    try:
        body = json.loads(raw.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise RequestError(f"request body is not JSON: {exc}")
    if not isinstance(body, dict):
        raise RequestError("request body must be a JSON object")
    return body


def _lint_payload(report, **extra: Any) -> Dict[str, Any]:
    payload = json.loads(report.render_json())
    payload.update(extra)
    return payload


def _validate_pipeline(
    optimization: str,
    optimizer: Optional[str] = None,
    params: Optional[Dict[str, Any]] = None,
) -> None:
    try:
        canonical_pipeline(optimization, optimizer, params)
    except Exception as exc:
        raise RequestError(f"bad pipeline spec: {exc}")


def _admit(
    service: CompileService,
    source: str,
    entry: Optional[str],
    size: Optional[int],
) -> Tuple[Optional[Response], Any]:
    """Admission lint; (reject-response, report). 422 carries findings."""
    report = service.lint(source, entry=entry, size=size)
    if report.errors:
        service.metrics.count("admission_rejects")
        return (422, _lint_payload(report, admitted=False)), report
    return None, report


async def _run_task(
    service: CompileService, task: GridTask, extra: Dict[str, Any]
) -> Response:
    row = await service.submit(task)
    if row.get("failed"):
        return 500, {"row": row, **extra}
    return 200, {"row": row, **extra}


async def handle_compile(
    service: CompileService, body: Dict[str, Any]
) -> Response:
    """Inline-source compile: lint-gate, register, measure one point."""
    source = _field(body, "source", str, required=True)
    entry = _field(body, "entry", str)
    depth = _field(body, "depth", int)
    optimization = _field(body, "optimization", str, default="none") or "none"
    _validate_pipeline(optimization)
    reject, report = _admit(service, source, entry, depth)
    if reject is not None:
        return reject
    resolved = entry or report.entry
    if resolved is None:
        raise RequestError("program defines no functions (nothing to compile)")
    name = service.register_inline(source, resolved)
    task = GridTask(MEASURE, name, depth, optimization)
    return await _run_task(
        service,
        task,
        {"name": name, "entry": resolved, "warnings": len(report.diagnostics)},
    )


async def handle_measure(
    service: CompileService, body: Dict[str, Any]
) -> Response:
    """Measure/optimize one point of a registered (or fuzz) benchmark."""
    name = _field(body, "name", str, required=True)
    depth = _field(body, "depth", int)
    optimization = _field(body, "optimization", str, default="none") or "none"
    optimizer = _field(body, "optimizer", str)
    params = _field(body, "params", dict) or {}
    lint_gate = body.get("lint", True)
    if not isinstance(lint_gate, bool):
        raise RequestError("field 'lint' must be bool")
    if optimizer is not None and optimizer not in optimizer_names():
        raise RequestError(
            f"unknown optimizer {optimizer!r}; "
            f"available: {optimizer_names()}"
        )
    _validate_pipeline(optimization, optimizer, params)
    known = service.known_source(name)
    if known is None:
        raise RequestError(f"unknown benchmark {name!r}")
    source, entry = known
    if is_unsized(name):
        depth = None
    if lint_gate:
        reject, _report = _admit(service, source, entry, depth)
        if reject is not None:
            return reject
    if optimizer is None:
        task = GridTask(MEASURE, name, depth, optimization)
    else:
        task = GridTask(
            OPTIMIZE,
            name,
            depth,
            optimization,
            optimizer,
            tuple(sorted(params.items())),
        )
    return await _run_task(service, task, {"name": name})


async def handle_lint(
    service: CompileService, body: Dict[str, Any]
) -> Response:
    """Lint as a service: the report, under the exit-code status map."""
    source = _field(body, "source", str, required=True)
    entry = _field(body, "entry", str)
    size = _field(body, "size", int)
    report = service.lint(source, entry=entry, size=size)
    status = 422 if report.exit_code() else 200
    return status, _lint_payload(report, exit_code=report.exit_code())


async def handle_cache_stats(
    service: CompileService, body: Dict[str, Any]
) -> Response:
    return 200, service.cache_stats()


async def handle_metrics(
    service: CompileService, body: Dict[str, Any]
) -> Response:
    return 200, service.metrics.snapshot()


async def handle_healthz(
    service: CompileService, body: Dict[str, Any]
) -> Response:
    from .. import _kernels

    # whether the compiled batch kernels back this server's cold-path
    # compiles (deployments watch this to catch builds that silently
    # fell back to the pure-Python kernels)
    return 200, {"ok": True, "compiled_kernels": _kernels.extension_available()}
