"""Coverage collection and coverage-guided seed scheduling tests."""

import pytest

from repro.fuzz.corpus import (
    ScheduleResult,
    coverage_guided_run,
    load_seed_manifest,
    save_seed_manifest,
    uniform_run,
)
from repro.fuzz.coverage import CoverageMap, covered_run
from repro.fuzz.generator import GenConfig
from repro.fuzz.oracles import OracleConfig

#: cheap oracle settings for scheduling tests (coverage tracing is the
#: point here, not oracle depth)
FAST = OracleConfig(n_inputs=1, check_optimizers=False)


class TestCollector:
    def test_covers_target_packages_only(self):
        from repro.lang.parser import parse_program
        from repro.lang.desugar import lower_entry

        program = parse_program(
            "fun main(x: uint) -> uint {\n  let y <- x + 1;\n  return y;\n}\n"
        )
        lowered, coverage = covered_run(lower_entry, program, "main")
        assert lowered.stmt is not None
        files = {path for path, _ in coverage.lines}
        assert any("typecheck" in f or "core" in f for f in files)
        # nothing outside repro.ir/compiler/circopt is traced
        assert not any("lang" in f.replace("\\", "/").split("/")[-2] for f in files)

    def test_branch_arcs_are_directional(self):
        from repro.ir.core import Skip
        from repro.ir.reverse import reverse

        _, coverage = covered_run(reverse, Skip())
        assert coverage.arcs
        for path, prev, line in coverage.arcs:
            assert isinstance(prev, int) and isinstance(line, int)

    def test_determinism(self):
        from repro.ir.core import Skip
        from repro.ir.reverse import reverse

        _, a = covered_run(reverse, Skip())
        _, b = covered_run(reverse, Skip())
        assert a.lines == b.lines and a.arcs == b.arcs

    def test_exceptions_propagate_and_uninstall(self):
        import sys

        def boom():
            raise ValueError("boom")

        with pytest.raises(ValueError):
            covered_run(boom)
        assert sys.gettrace() is None

    def test_merge_and_novel(self):
        a = CoverageMap(lines={("f", 1)}, arcs={("f", 1, 2)})
        b = CoverageMap(lines={("f", 3)}, arcs={("f", 2, 3), ("f", 1, 2)})
        assert a.novel_arcs(b) == {("f", 2, 3)}
        a.merge(b)
        assert a.counts() == {"statements": 2, "branches": 2}


class TestScheduling:
    @pytest.fixture(scope="class")
    def runs(self):
        budget = 8
        guided = coverage_guided_run(0, budget, GenConfig(), FAST)
        uniform = uniform_run(0, budget, GenConfig(), FAST)
        return guided, uniform

    def test_all_seeds_pass(self, runs):
        guided, uniform = runs
        assert all(r.ok for r in guided.reports), [
            (r.seed, r.oracle) for r in guided.reports if not r.ok
        ]
        assert all(r.ok for r in uniform.reports)

    def test_same_budget(self, runs):
        guided, uniform = runs
        assert len(guided.reports) == len(uniform.reports)

    def test_guided_beats_uniform_branch_coverage(self, runs):
        """The acceptance metric: strictly higher cumulative branch coverage
        for the same program budget."""
        guided, uniform = runs
        assert guided.branch_coverage() > uniform.branch_coverage()

    def test_summary_logs_the_metric(self, runs):
        guided, _ = runs
        summary = guided.summary()
        assert "coverage-guided" in summary
        assert f"{guided.branch_coverage()} branches" in summary

    def test_frontier_holds_novel_seeds(self, runs):
        guided, _ = runs
        assert guided.frontier
        assert all(entry.novel_branches > 0 for entry in guided.frontier)

    def test_deterministic_schedule(self, runs):
        guided, _ = runs
        again = coverage_guided_run(0, len(guided.reports), GenConfig(), FAST)
        assert [r.seed for r in again.reports] == [r.seed for r in guided.reports]
        assert again.branch_coverage() == guided.branch_coverage()

    def test_knob_mutations_explored(self, runs):
        """The round-robin knob mutations reach the superposition and
        heap-shape families, which is where the extra coverage comes from."""
        guided, _ = runs
        gens = [r.gen for r in guided.reports if r.gen is not None]
        assert any(g.hadamard_prob > 0 for g in gens) or any(
            g.heap_shapes for g in gens
        )


class TestFrontierManifest:
    def test_save_load_roundtrip(self, tmp_path):
        entries = [
            (7, GenConfig()),
            (1_000_003, GenConfig(hadamard_prob=0.3, max_depth=4)),
            (42, GenConfig(heap_shapes=True)),
        ]
        path = save_seed_manifest(entries, tmp_path / "frontier.json", "test")
        loaded = load_seed_manifest(path)
        assert loaded == entries
