"""Bit-identity tests for the batch kernels and the compiled extension.

Every kernel introduced by the batch-level rewrite has a pure-Python
fallback, and both must agree gate-for-gate (or amplitude-for-amplitude)
with the frozen seed implementations in :mod:`repro.reference`:

* the compiled cancel fixpoint (:func:`repro._kernels.cancel_fixpoint`)
  vs the vectorized pure-Python sweep vs ``cancel_to_fixpoint_seed``;
* the compiled fold classifier feeding the grouped phase fold vs the
  pure-Python wire-state sweep vs ``fold_phases_seed``;
* the batched statevector plan (``run``/``unitary``/``sparse_run``) vs
  the per-gate seed kernels.

The extension is exercised when it is loaded; the ``REPRO_NO_EXT=1``
escape hatch and the bounded caches get dedicated tests.  CI runs the
whole suite twice — extension built and ``REPRO_NO_EXT=1`` — so both
dispatch arms stay covered regardless of the build environment.
"""

from __future__ import annotations

import os
import subprocess
import sys

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro import _kernels, reference
from repro.circopt import cancel_to_fixpoint, fold_phases
from repro.circopt.cancel import _cancel_to_fixpoint_pure
from repro.circopt.phase_poly import (
    _fold_packed_keys_python,
    _fold_stream_grouped,
)
from repro.circuit import Circuit, GateStream, cnot, h, swap, t, tdg, toffoli, x
from repro.circuit.gates import Gate, GateKind
from repro.circuit import statevector as sv


# --------------------------------------------------------- gate strategies
def _gate_strategy(num_qubits: int, exotic: bool):
    """Random gates over ``num_qubits`` wires; ``exotic`` adds the
    multi-controlled/controlled-phase shapes the compiled fold kernel
    must decline."""
    qubits = st.integers(0, num_qubits - 1)
    phase_kinds = st.sampled_from(
        [GateKind.T, GateKind.TDG, GateKind.S, GateKind.SDG, GateKind.Z]
    )

    def distinct(n):
        return st.lists(qubits, min_size=n, max_size=n, unique=True)

    options = [
        st.builds(lambda k, qs: Gate(k, (), (qs[0],)), phase_kinds, distinct(1)),
        st.builds(lambda qs: Gate(GateKind.H, (), (qs[0],)), distinct(1)),
        st.builds(lambda qs: Gate(GateKind.MCX, (), (qs[0],)), distinct(1)),
    ]
    if num_qubits >= 2:
        options += [
            st.builds(
                lambda qs: Gate(GateKind.MCX, (qs[0],), (qs[1],)), distinct(2)
            ),
            st.builds(
                lambda qs: Gate(GateKind.SWAP, (), (qs[0], qs[1])), distinct(2)
            ),
        ]
    if exotic and num_qubits >= 3:
        options += [
            st.builds(
                lambda qs: Gate(GateKind.MCX, (qs[0], qs[1]), (qs[2],)),
                distinct(3),
            ),
            st.builds(
                lambda k, qs: Gate(k, (qs[0],), (qs[1],)),
                phase_kinds,
                distinct(2),
            ),
            st.builds(
                lambda qs: Gate(GateKind.SWAP, (qs[0],), (qs[1], qs[2])),
                distinct(3),
            ),
        ]
    return st.lists(st.one_of(options), max_size=60)


# ------------------------------------------------------------ cancel paths
@settings(max_examples=60, deadline=None)
@given(st.data(), st.sampled_from([1, 2, 3, 4, 5, 70, 130]))
def test_cancel_fixpoint_paths_identical(data, num_qubits):
    """Compiled, pure-Python and seed fixpoints agree gate-for-gate.

    Widths 70 and 130 force multi-word masks in the C kernel and bigint
    masks in the Python fallback.
    """
    gates = data.draw(_gate_strategy(num_qubits, exotic=True))
    window = data.draw(st.sampled_from([1, 2, 4, 64]))
    max_passes = data.draw(st.sampled_from([1, 3, 20]))
    pure = _cancel_to_fixpoint_pure(list(gates), window, max_passes)
    seed = reference.cancel_to_fixpoint_seed(list(gates), window, max_passes)
    assert pure == seed
    compiled = _kernels.cancel_fixpoint(list(gates), window, max_passes)
    if compiled is not None:  # extension built and enabled
        assert compiled == seed
    dispatched = cancel_to_fixpoint(list(gates), window, max_passes)
    assert dispatched == seed


def test_cancel_respects_qubit_tuple_order():
    """Equal qubit *sets* with different control order must not cancel.

    ``toffoli(1, 2, 3)`` and ``toffoli(2, 1, 3)`` have identical masks;
    only the interned ``(controls, targets)`` ordinal distinguishes them,
    on both the compiled and the pure-Python path.
    """
    gates = [toffoli(1, 2, 3), toffoli(2, 1, 3)]
    assert _cancel_to_fixpoint_pure(list(gates), 64, 20) == gates
    compiled = _kernels.cancel_fixpoint(list(gates), 64, 20)
    if compiled is not None:
        assert compiled == gates
    # same-order controls do annihilate
    pair = [toffoli(1, 2, 3), toffoli(1, 2, 3)]
    assert cancel_to_fixpoint(pair) == []


# -------------------------------------------------------------- fold paths
@settings(max_examples=60, deadline=None)
@given(st.data(), st.sampled_from([1, 2, 3, 4, 5, 70, 130]))
def test_fold_paths_identical(data, num_qubits):
    """Grouped fold (compiled or fallback) equals sweep and seed output."""
    gates = data.draw(_gate_strategy(num_qubits, exotic=True))
    circuit = Circuit(num_qubits, gates)
    seed = reference.fold_phases_seed(circuit).gates
    folded = fold_phases(circuit).gates
    assert folded == seed
    stream = GateStream.from_gates(gates, num_qubits)
    assert _fold_stream_grouped(stream) == seed


@settings(max_examples=40, deadline=None)
@given(st.data())
def test_fold_classifier_agrees_with_python_keys(data):
    """Compiled and Python classifiers induce the same parity grouping.

    Intern ids may differ between the two, but the partition of phase
    gates into (parity, const) classes — which is all the grouped fold
    consumes — must match exactly.
    """
    gates = data.draw(_gate_strategy(4, exotic=False))
    stream = GateStream.from_gates(gates, 4)
    python_keys = _fold_packed_keys_python(stream)
    compiled_keys = _kernels.fold_classify(stream)
    if compiled_keys is None:
        return  # extension unavailable: nothing to compare
    assert len(compiled_keys) == len(python_keys)
    remap: dict = {}
    for ck, pk in zip(compiled_keys.tolist(), python_keys.tolist()):
        assert (ck < 0) == (pk < 0)
        if ck < 0:
            continue
        assert ck % 2 == pk % 2  # affine consts agree
        assert remap.setdefault(ck // 2, pk // 2) == pk // 2
    assert len(set(remap.values())) == len(remap)  # bijection


def test_fold_classifier_declines_multi_controlled_gates():
    """2+ control gates exceed the packed columns: kernel must decline."""
    gates = [t(0), toffoli(0, 1, 2), t(2)]
    stream = GateStream.from_gates(gates, 3)
    assert _kernels.fold_classify(stream) is None or not _kernels.extension_available()
    # the dispatching fold still matches the seed
    circuit = Circuit(3, gates)
    assert fold_phases(circuit).gates == reference.fold_phases_seed(circuit).gates


# ------------------------------------------------------- statevector paths
@settings(max_examples=40, deadline=None)
@given(st.data(), st.integers(1, 5))
def test_batched_statevector_matches_seed(data, num_qubits):
    """Plan-batched run/unitary/sparse_run agree with the seed kernels."""
    gates = data.draw(_gate_strategy(num_qubits, exotic=True))
    circuit = Circuit(num_qubits, gates)
    got = sv.run(circuit)
    want = reference.run_seed(circuit)
    assert np.allclose(got, want, atol=1e-10)
    assert np.allclose(
        sv.unitary(circuit), reference.unitary_seed(circuit), atol=1e-10
    )
    sparse = sv.sparse_run(circuit, 0, support_cap=1 << 12)
    assert np.allclose(
        sv.sparse_to_dense(sparse, num_qubits), got, atol=1e-7
    )


def test_mix_run_batches_permutations_and_phases():
    """A CNOT/T run between Hadamards goes through the batched kernel."""
    gates = [h(0), cnot(0, 1), t(1), cnot(0, 1), tdg(1), swap(0, 1), x(0), h(1)]
    circuit = Circuit(2, gates)
    plan = sv._circuit_plan(circuit)
    kinds = [seg[0] for seg in plan]
    assert kinds == ["h", "mix", "h"]
    assert len(plan[1][1]) == 6
    assert sv._circuit_plan(circuit) is plan  # cached by identity
    mat = sv.unitary(circuit)
    assert np.allclose(mat, reference.unitary_seed(circuit), atol=1e-10)


def test_table_cache_is_bounded():
    """Mixed-width sweeps must not grow the index-table cache unboundedly."""
    cache = sv._TABLE_CACHE
    for nq in range(1, 11):
        for cbit in range(nq - 1):
            sv._pair_indices(1 << nq, 1 << cbit, 1)
            sv._phase_indices(1 << nq, 1 << cbit, 1)
    assert len(cache) <= cache.maxsize
    # an entry built twice in a row is served from cache (same object)
    a = sv._pair_indices(1 << 10, 1, 2)
    b = sv._pair_indices(1 << 10, 1, 2)
    assert a is b


def test_plan_cache_is_bounded_and_keyed_by_identity():
    circuits = [Circuit(1, [t(0)]) for _ in range(sv._PLAN_CACHE_MAX + 8)]
    plans = [sv._circuit_plan(c) for c in circuits]
    assert len(sv._PLAN_CACHE) <= sv._PLAN_CACHE_MAX
    # identical contents, distinct objects: separate entries, equal plans
    assert plans[-1] == plans[-2]
    assert sv._circuit_plan(circuits[-1]) is plans[-1]


# ------------------------------------------------------------ ext plumbing
def test_repro_no_ext_disables_extension():
    """REPRO_NO_EXT=1 must force the pure-Python path in a fresh process."""
    code = (
        "from repro import _kernels\n"
        "assert not _kernels.extension_available()\n"
        "assert 'REPRO_NO_EXT' in _kernels.extension_status()\n"
        "from repro.circuit import t, tdg\n"
        "assert _kernels.cancel_fixpoint([t(0), tdg(0)], 64, 20) is None\n"
        "from repro.circopt import cancel_to_fixpoint\n"
        "assert cancel_to_fixpoint([t(0), tdg(0)]) == []\n"
    )
    env = dict(os.environ, REPRO_NO_EXT="1")
    src = os.path.join(os.path.dirname(os.path.dirname(__file__)), "src")
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    proc = subprocess.run(
        [sys.executable, "-c", code], env=env, capture_output=True, text=True
    )
    assert proc.returncode == 0, proc.stderr


def test_extension_status_reports_reason():
    """Status string is empty exactly when the extension is loaded."""
    status = _kernels.extension_status()
    assert (status == "") == _kernels.extension_available()


def test_kernels_degenerate_inputs():
    """Empty streams and zero budgets return early on every path."""
    assert _kernels.cancel_fixpoint([], 64, 20) is None
    assert _kernels.cancel_fixpoint([t(0)], 64, 0) is None
    empty = GateStream.from_gates([], 1)
    keys = _kernels.fold_classify(empty)
    assert keys is None or len(keys) == 0
    assert fold_phases(Circuit(1, [])).gates == []
    assert cancel_to_fixpoint([]) == []
