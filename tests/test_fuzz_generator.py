"""Tests for the fuzz program generator, renderer, and shrinker."""

import pytest

from repro.benchsuite import get_entry, get_source, is_unsized
from repro.fuzz import (
    DEFAULT_FUZZ_CONFIG,
    GenConfig,
    fuzz_name,
    generate_program,
    program_for_spec,
    program_seed,
    render_program,
    shrink,
)
from repro.ir import check_program
from repro.lang.ast import SIf, SWith
from repro.lang.desugar import lower_entry
from repro.lang.parser import parse_program

SEEDS = range(25)


class TestDeterminism:
    def test_same_seed_same_program(self):
        for seed in (0, 7, 123456):
            assert generate_program(seed) == generate_program(seed)
            assert render_program(generate_program(seed)) == render_program(
                generate_program(seed)
            )

    def test_different_seeds_differ(self):
        sources = {render_program(generate_program(s)) for s in SEEDS}
        assert len(sources) > 20  # virtually all distinct

    def test_knobs_change_output(self):
        changed = 0
        for seed in range(10):
            deep = render_program(generate_program(seed, GenConfig(max_depth=5)))
            shallow = render_program(generate_program(seed, GenConfig(max_depth=1)))
            changed += deep != shallow
        assert changed >= 5  # the depth knob bites on most seeds

    def test_program_seed_stable(self):
        assert program_seed(0, 0) == 0
        assert program_seed(1, 2) == 1_000_005


class TestWellTyped:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_programs_typecheck_strictly(self, seed):
        program = generate_program(seed)
        lowered = lower_entry(program, "main", None, DEFAULT_FUZZ_CONFIG)
        check_program(lowered.stmt, lowered.table, lowered.param_types)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_render_parse_roundtrip(self, seed):
        program = generate_program(seed)
        assert parse_program(render_program(program)) == program


class TestCoverage:
    def test_language_features_all_exercised(self):
        """Across a seed range, every statement form must appear."""
        seen = set()
        for seed in range(40):
            source = render_program(generate_program(seed))
            if "with {" in source:
                seen.add("with")
            if "if " in source:
                seen.add("if")
            if "<->" in source:
                seen.add("swap")
            if "*" in source and "<->" in source:
                seen.add("memswap")
            if "rec" in source:
                seen.add("recursion")
            if "->" in source.replace("-> ", "", 1):
                seen.add("unassign")
        assert {"with", "if", "swap", "recursion"} <= seen


class TestGridNames:
    def test_spec_resolution(self):
        source, entry = program_for_spec(fuzz_name(3, 1))
        assert entry == "main"
        assert source == render_program(generate_program(program_seed(3, 1)))

    def test_spec_with_depth_knob(self):
        source, _ = program_for_spec("fuzz:3:1:2")
        expected = generate_program(program_seed(3, 1), GenConfig(max_depth=2))
        assert source == render_program(expected)

    def test_benchsuite_resolvers(self):
        name = fuzz_name(0, 0)
        assert is_unsized(name)
        assert get_entry(name) == "main"
        assert "fun main" in get_source(name)
        with pytest.raises(KeyError):
            get_source("no-such-benchmark")

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            program_for_spec("fuzz:1")
        with pytest.raises(ValueError):
            program_for_spec("length")


class TestShrink:
    def test_shrinks_to_minimal_if(self):
        program = generate_program(11)

        def has_if(prog):
            def stmt_has_if(s):
                if isinstance(s, SIf):
                    return True
                if isinstance(s, SWith):
                    return any(map(stmt_has_if, s.setup + s.body))
                return False

            for fd in prog.fundefs:
                if any(stmt_has_if(s) for s in fd.body):
                    return "has-if"
            return None

        assert has_if(program) == "has-if"
        shrunk, attempts = shrink(program, has_if)
        assert has_if(shrunk) == "has-if"
        assert attempts > 1
        # minimal: one function left beyond anything uncalled, few statements
        total = sum(len(fd.body) for fd in shrunk.fundefs)
        assert total <= 3

    def test_passing_program_not_shrunk(self):
        program = generate_program(0)
        shrunk, attempts = shrink(program, lambda p: None)
        assert shrunk == program
        assert attempts == 1

    def test_shrinking_is_deterministic(self):
        program = generate_program(11)

        def signature(prog):
            return "sig" if prog.fundefs else None

        a, _ = shrink(program, signature)
        b, _ = shrink(program, signature)
        assert a == b
