"""Tests for the fuzz program generator, renderer, and shrinker."""

import pytest

from repro.benchsuite import get_entry, get_source, is_unsized
from repro.fuzz import (
    DEFAULT_FUZZ_CONFIG,
    GenConfig,
    fuzz_name,
    generate_program,
    program_for_spec,
    program_seed,
    render_program,
    shrink,
)
from repro.ir import check_program
from repro.lang.ast import SIf, SWith
from repro.lang.desugar import lower_entry
from repro.lang.parser import parse_program

SEEDS = range(25)


class TestDeterminism:
    def test_same_seed_same_program(self):
        for seed in (0, 7, 123456):
            assert generate_program(seed) == generate_program(seed)
            assert render_program(generate_program(seed)) == render_program(
                generate_program(seed)
            )

    def test_different_seeds_differ(self):
        sources = {render_program(generate_program(s)) for s in SEEDS}
        assert len(sources) > 20  # virtually all distinct

    def test_knobs_change_output(self):
        changed = 0
        for seed in range(10):
            deep = render_program(generate_program(seed, GenConfig(max_depth=5)))
            shallow = render_program(generate_program(seed, GenConfig(max_depth=1)))
            changed += deep != shallow
        assert changed >= 5  # the depth knob bites on most seeds

    def test_program_seed_stable(self):
        assert program_seed(0, 0) == 0
        assert program_seed(1, 2) == 1_000_005


class TestWellTyped:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_generated_programs_typecheck_strictly(self, seed):
        program = generate_program(seed)
        lowered = lower_entry(program, "main", None, DEFAULT_FUZZ_CONFIG)
        check_program(lowered.stmt, lowered.table, lowered.param_types)

    @pytest.mark.parametrize("seed", SEEDS)
    def test_render_parse_roundtrip(self, seed):
        program = generate_program(seed)
        assert parse_program(render_program(program)) == program


class TestCoverage:
    def test_language_features_all_exercised(self):
        """Across a seed range, every statement form must appear."""
        seen = set()
        for seed in range(40):
            source = render_program(generate_program(seed))
            if "with {" in source:
                seen.add("with")
            if "if " in source:
                seen.add("if")
            if "<->" in source:
                seen.add("swap")
            if "*" in source and "<->" in source:
                seen.add("memswap")
            if "rec" in source:
                seen.add("recursion")
            if "->" in source.replace("-> ", "", 1):
                seen.add("unassign")
        assert {"with", "if", "swap", "recursion"} <= seen


class TestGridNames:
    def test_spec_resolution(self):
        source, entry = program_for_spec(fuzz_name(3, 1))
        assert entry == "main"
        assert source == render_program(generate_program(program_seed(3, 1)))

    def test_spec_with_depth_knob(self):
        source, _ = program_for_spec("fuzz:3:1:2")
        expected = generate_program(program_seed(3, 1), GenConfig(max_depth=2))
        assert source == render_program(expected)

    def test_benchsuite_resolvers(self):
        name = fuzz_name(0, 0)
        assert is_unsized(name)
        assert get_entry(name) == "main"
        assert "fun main" in get_source(name)
        with pytest.raises(KeyError):
            get_source("no-such-benchmark")

    def test_bad_spec_rejected(self):
        with pytest.raises(ValueError):
            program_for_spec("fuzz:1")
        with pytest.raises(ValueError):
            program_for_spec("length")


class TestShrink:
    def test_shrinks_to_minimal_if(self):
        program = generate_program(11)

        def has_if(prog):
            def stmt_has_if(s):
                if isinstance(s, SIf):
                    return True
                if isinstance(s, SWith):
                    return any(map(stmt_has_if, s.setup + s.body))
                return False

            for fd in prog.fundefs:
                if any(stmt_has_if(s) for s in fd.body):
                    return "has-if"
            return None

        assert has_if(program) == "has-if"
        shrunk, attempts = shrink(program, has_if)
        assert has_if(shrunk) == "has-if"
        assert attempts > 1
        # minimal: one function left beyond anything uncalled, few statements
        total = sum(len(fd.body) for fd in shrunk.fundefs)
        assert total <= 3

    def test_passing_program_not_shrunk(self):
        program = generate_program(0)
        shrunk, attempts = shrink(program, lambda p: None)
        assert shrunk == program
        assert attempts == 1

    def test_shrinking_is_deterministic(self):
        program = generate_program(11)

        def signature(prog):
            return "sig" if prog.fundefs else None

        a, _ = shrink(program, signature)
        b, _ = shrink(program, signature)
        assert a == b


class TestFlaggedNames:
    def test_flagged_spec_resolution(self):
        from repro.fuzz.generator import (
            gen_for_flags,
            generate_program,
            spec_for_name,
        )

        seed, index, gen = spec_for_name("fuzz:3:1:hs")
        assert (seed, index) == (3, 1)
        assert gen.hadamard_prob > 0 and gen.heap_shapes
        source, entry = program_for_spec("fuzz:3:1:hs")
        assert entry == "main"
        expected = generate_program(program_seed(3, 1), gen_for_flags("hs"))
        assert source == render_program(expected)

    def test_depth_and_flags_compose(self):
        from repro.fuzz.generator import spec_for_name

        _, _, gen = spec_for_name("fuzz:7:12:2:h")
        assert gen.max_depth == 2 and gen.hadamard_prob > 0
        assert not gen.heap_shapes

    def test_unknown_flag_rejected(self):
        with pytest.raises(ValueError):
            fuzz_name(0, 0, None, "q")
        with pytest.raises(ValueError):
            program_for_spec("fuzz:0:0:zz")

    def test_flagged_names_through_benchsuite(self):
        name = fuzz_name(0, 2, None, "s")
        assert is_unsized(name)
        assert "tree" in get_source(fuzz_name(0, 0, None, "s")) or "trav" in get_source(name)


class TestHeapShapeWorkloads:
    def test_workload_carries_shapes(self):
        from repro.fuzz.generator import generate_workload

        gen = GenConfig(heap_shapes=True)
        for seed in range(8):
            workload = generate_workload(seed, gen)
            assert len(workload.shapes) == 1
            (shape,) = workload.shapes
            assert shape.kind in ("list", "tree")
            assert shape.bound >= 2
            # the shaped parameter exists on main
            main = workload.program.fun("main")
            assert any(name == shape.param for name, _ in main.params)

    def test_both_shape_kinds_appear(self):
        from repro.fuzz.generator import generate_workload

        gen = GenConfig(heap_shapes=True)
        kinds = {generate_workload(s, gen).shapes[0].kind for s in range(12)}
        assert kinds == {"list", "tree"}

    def test_traversal_called_first(self):
        from repro.fuzz.generator import generate_workload
        from repro.lang.ast import ECall, SLet

        gen = GenConfig(heap_shapes=True)
        for seed in range(6):
            workload = generate_workload(seed, gen)
            first = workload.program.fun("main").body[0]
            assert isinstance(first, SLet) and isinstance(first.expr, ECall)
            assert first.expr.func.startswith("trav")

    def test_shaped_programs_typecheck(self):
        from repro.fuzz.generator import HEAP_FUZZ_CONFIG, generate_workload

        gen = GenConfig(heap_shapes=True)
        for seed in range(8):
            workload = generate_workload(seed, gen)
            lowered = lower_entry(workload.program, "main", None, HEAP_FUZZ_CONFIG)
            check_program(lowered.stmt, lowered.table, lowered.param_types)

    def test_plain_workload_has_no_shapes(self):
        from repro.fuzz.generator import generate_workload

        assert generate_workload(0).shapes == ()


class TestHadamardBudget:
    def test_hadamard_statements_bounded(self):
        gen = GenConfig(hadamard_prob=1.0, max_hadamards=2)
        for seed in range(10):
            source = render_program(generate_program(seed, gen))
            assert source.count("H(") <= 2

    def test_hadamards_appear_with_probability(self):
        gen = GenConfig(hadamard_prob=0.5)
        sources = [render_program(generate_program(s, gen)) for s in range(20)]
        assert any("H(" in source for source in sources)

    @pytest.mark.parametrize(
        "gen",
        [
            GenConfig(hadamard_prob=0.5),
            GenConfig(hadamard_prob=1.0, max_helpers=3, max_depth=4),
            GenConfig(hadamard_prob=0.3, heap_shapes=True),
        ],
        ids=["default", "helper-heavy", "heap-shapes"],
    )
    def test_inlined_hadamard_count_respects_budget(self, gen):
        """The H budget covers *inlined* multiplicity, not surface count.

        A helper with one H called six times inlines to six live Hadamards
        (sparse support 2**6); found by the first coverage-guided run as a
        support-cap blowup, fixed by charging calls their callee's
        transitive H count times the unroll bound.
        """
        from repro.fuzz.generator import default_fuzz_config
        from repro.ir.core import Hadamard
        from repro.lang.desugar import lower_entry

        compiler = default_fuzz_config(gen)
        for seed in range(30):
            program = generate_program(seed, gen, compiler)
            lowered = lower_entry(program, "main", None, compiler)
            live = sum(
                1 for node in lowered.stmt.walk() if isinstance(node, Hadamard)
            )
            assert live <= gen.max_hadamards, (
                f"seed {seed}: {live} inlined Hadamards exceed the "
                f"budget of {gen.max_hadamards}"
            )
