"""Chaos tests: injected faults must never change what a sweep computes.

The safety net of the fault-injection harness: a grid executed under any
fault plan — worker crashes, hung tasks, torn cache writes, flaky I/O —
produces measurement rows bit-identical to a clean serial run, and an
interrupted sweep resumes from its journal without re-executing anything
already checkpointed.
"""

from __future__ import annotations

import pytest

from repro.benchsuite import (
    ArtifactCache,
    BenchmarkRunner,
    CachedBackend,
    ParallelBackend,
    RetryPolicy,
    SerialBackend,
    SweepJournal,
    measure_tasks,
    optimizer_tasks,
)
from repro.config import CompilerConfig
from repro.faults import inject, parse_fault_plan

TINY = CompilerConfig(word_width=3, addr_width=3, heap_cells=5)

#: a small grid exercising both task kinds and the two-wave scheduler
GRID = measure_tasks("length", [2, 3]) + optimizer_tasks(
    "length-simplified", [2], ["peephole", "toffoli-cancel"]
)

#: row keys that may legitimately differ between backends / fault runs
VOLATILE = ("compile_seconds", "wall_seconds", "seconds", "cached", "timings",
            "prefix_cached", "journal_resumed", "attempts")


def stable(rows):
    return [
        {k: v for k, v in row.items() if k not in VOLATILE} for row in rows
    ]


@pytest.fixture(autouse=True)
def _no_fault_leak():
    yield
    inject.uninstall()


@pytest.fixture(scope="module")
def clean_rows():
    return stable(BenchmarkRunner(TINY).run_grid(GRID).rows)


def chaos_run(plan_text, seed, tmp_path, jobs=2, **policy_kwargs):
    inject.install(parse_fault_plan(plan_text, seed=seed))
    try:
        policy = RetryPolicy(backoff_base=0.001, seed=seed, **policy_kwargs)
        backend = ParallelBackend(jobs=jobs, cache=ArtifactCache(tmp_path), policy=policy)
        return BenchmarkRunner(TINY, backend=backend).run_grid(GRID)
    finally:
        inject.uninstall()


# -------------------------------------------------------------- bit-identity
@pytest.mark.slow
def test_crash_faults_rows_bit_identical(tmp_path, clean_rows):
    result = chaos_run("crash:worker.execute:p=0.4:a=2", 42, tmp_path)
    assert not result.failed_rows
    assert stable(result.rows) == clean_rows


@pytest.mark.slow
def test_torn_cache_writes_rows_bit_identical(tmp_path, clean_rows):
    result = chaos_run(
        "corrupt:cache.store_point:p=0.5,corrupt:cache.store_circuit:p=0.5",
        7,
        tmp_path,
    )
    assert not result.failed_rows
    assert stable(result.rows) == clean_rows
    # and a warm second sweep over the damaged cache still matches: corrupt
    # entries are quarantined and recomputed, never served
    cache = ArtifactCache(tmp_path)
    warm = BenchmarkRunner(
        TINY, backend=CachedBackend(cache, SerialBackend(RetryPolicy()))
    ).run_grid(GRID)
    assert not warm.failed_rows
    assert stable(warm.rows) == clean_rows


@pytest.mark.slow
def test_flaky_cache_reads_rows_bit_identical(tmp_path, clean_rows):
    result = chaos_run(
        "flaky:cache.load_point:p=0.3,flaky:cache.load_circuit:p=0.3",
        3,
        tmp_path,
        jobs=1,  # serial+cached path: exercises the cached backend's reads
    )
    assert not result.failed_rows
    assert stable(result.rows) == clean_rows


@pytest.mark.slow
def test_hang_faults_timeout_and_retry(tmp_path, clean_rows):
    result = chaos_run(
        "hang:worker.execute:p=0.6:a=1:s=30",
        11,
        tmp_path,
        task_timeout=2.0,
    )
    assert not result.failed_rows
    assert stable(result.rows) == clean_rows


@pytest.mark.slow
def test_repeated_pool_deaths_degrade_to_serial(tmp_path, clean_rows):
    # every spawned worker dies in its initializer: the pool can never do
    # work, and after max_pool_deaths the sweep must finish in-parent
    result = chaos_run(
        "crash:pool.spawn:p=1.0", 0, tmp_path, max_pool_deaths=2
    )
    assert not result.failed_rows
    assert stable(result.rows) == clean_rows


# ------------------------------------------------- stranded staging files
@pytest.mark.slow
def test_worker_crash_mid_store_strands_then_sweeps_tmp(tmp_path):
    """A worker dying between ``mkstemp`` and ``os.replace`` (the
    ``cache.store_point`` chaos window) strands its ``.tmp-*`` staging
    file: ``os._exit`` skips the unlink that covers parent-side failures.
    The sweep must still finish with correct rows, ``usage()`` must
    account for the dead bytes, and the sweep path must reclaim them.

    The plan is fully deterministic: ``p=1.0`` crashes every worker that
    reaches the window (``n=1`` caps it at once per process), so the
    sweep degrades pool → pool → serial; the parent's own fire raises
    (and cleans up) instead of exiting, and its retry lands the row.
    """
    tasks = measure_tasks("length", [2])
    inject.install(parse_fault_plan("crash:cache.store_point:p=1.0:n=1", seed=0))
    try:
        policy = RetryPolicy(
            retries=4, backoff_base=0.001, max_pool_deaths=2, seed=0
        )
        cache = ArtifactCache(tmp_path)
        backend = ParallelBackend(jobs=2, cache=cache, policy=policy)
        result = BenchmarkRunner(TINY, backend=backend).run_grid(tasks)
    finally:
        inject.uninstall()
    assert not result.failed_rows
    assert stable(result.rows) == stable(
        BenchmarkRunner(TINY).run_grid(tasks).rows
    )

    # the two worker deaths each stranded one temp file
    usage = cache.usage()
    assert usage["tmp_files"] >= 1
    assert usage["tmp_bytes"] > 0
    assert cache.sweep_tmp(max_age=0.0) == usage["tmp_files"]
    after = cache.usage()
    assert after["tmp_files"] == 0 and after["tmp_bytes"] == 0

    # the swept cache still serves a warm, bit-identical run
    warm = BenchmarkRunner(
        TINY, backend=CachedBackend(cache, SerialBackend(RetryPolicy()))
    ).run_grid(tasks)
    assert not warm.failed_rows
    assert stable(warm.rows) == stable(result.rows)


# ------------------------------------------------------------ failure rows
def test_exhausted_task_becomes_failure_row_not_abort(tmp_path):
    # worker.execute crashes on every attempt for every key: each task
    # burns its whole retry budget and lands as a failure row
    inject.install(parse_fault_plan("crash:worker.execute:p=1.0", seed=0))
    tasks = measure_tasks("length", [2, 3])
    policy = RetryPolicy(retries=1, backoff_base=0.0)
    result = BenchmarkRunner(
        TINY, backend=SerialBackend(policy)
    ).run_grid(tasks)
    assert len(result.failed_rows) == 2
    assert all(r["error_kind"] == "crash" for r in result.failed_rows)
    assert all(r["attempts"] == 2 for r in result.failed_rows)


def test_max_failures_aborts_sweep(tmp_path):
    inject.install(parse_fault_plan("crash:worker.execute:p=1.0", seed=0))
    tasks = measure_tasks("length", [2, 3, 4, 5])
    policy = RetryPolicy(retries=0, max_failures=1, backoff_base=0.0)
    result = BenchmarkRunner(
        TINY, backend=SerialBackend(policy)
    ).run_grid(tasks)
    assert len(result.rows) == 2  # aborted right after the second failure


# ----------------------------------------------------------- lost-row guard
def test_lost_rows_raise_instead_of_shrinking(monkeypatch, tmp_path):
    backend = ParallelBackend(jobs=2, policy=RetryPolicy())
    monkeypatch.setattr(
        ParallelBackend, "_run_wave", lambda self, *a, **k: None
    )
    with pytest.raises(RuntimeError, match="lost"):
        backend.run(BenchmarkRunner(TINY), measure_tasks("length", [2]))


# ------------------------------------------------------- interrupt + resume
def test_interrupt_leaves_resumable_journal(tmp_path):
    tasks = measure_tasks("length", [2, 3, 4, 5])
    journal = SweepJournal.for_grid(tmp_path, "t", tasks, TINY)
    runner = BenchmarkRunner(TINY)
    real_measure = runner.measure
    calls = []

    def interrupting(name, depth, optimization="none"):
        if len(calls) == 2:
            raise KeyboardInterrupt
        calls.append((name, depth))
        return real_measure(name, depth, optimization)

    runner.measure = interrupting
    with pytest.raises(KeyboardInterrupt):
        runner.run_grid(tasks, journal=journal)
    # the two completed rows survived the interrupt
    journal = SweepJournal.for_grid(tmp_path, "t", tasks, TINY)
    assert len(journal.load()) == 2

    # resume: only the two un-journaled tasks execute
    resumed_calls = []
    resumer = BenchmarkRunner(TINY)
    real = resumer.measure

    def counting(name, depth, optimization="none"):
        resumed_calls.append((name, depth))
        return real(name, depth, optimization)

    resumer.measure = counting
    result = resumer.run_grid(tasks, journal=journal, resume=True)
    assert len(result.rows) == 4 and not result.failed_rows
    assert sorted(resumed_calls) == [("length", 4), ("length", 5)]
    assert sum(bool(r.get("journal_resumed")) for r in result.rows) == 2


def test_fully_journaled_sweep_never_compiles(tmp_path, monkeypatch):
    tasks = measure_tasks("length", [2, 3])
    journal = SweepJournal.for_grid(tmp_path, "t", tasks, TINY)
    BenchmarkRunner(TINY).run_grid(tasks, journal=journal)

    def forbidden(*args, **kwargs):
        raise AssertionError("resume recompiled a journaled point")

    monkeypatch.setattr("repro.benchsuite.runner.compile_program", forbidden)
    result = BenchmarkRunner(TINY).run_grid(
        tasks,
        journal=SweepJournal.for_grid(tmp_path, "t", tasks, TINY),
        resume=True,
    )
    assert len(result.rows) == 2
    assert all(r.get("journal_resumed") for r in result.rows)
