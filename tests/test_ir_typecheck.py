"""Tests for the core IR type system (Γ ⊢ s ⊣ Γ′)."""

import pytest

from repro.config import CompilerConfig
from repro.errors import TypeCheckError
from repro.ir import (
    Assign,
    AtomE,
    BinOp,
    BoolV,
    Hadamard,
    If,
    Lit,
    MemSwap,
    Pair,
    Proj,
    PtrV,
    Swap,
    UIntV,
    UnAssign,
    UnOp,
    Var,
    With,
    check_program,
    infer_types,
    seq,
)
from repro.types import BOOL, UINT, NamedT, PtrT, TupleT, TypeTable


@pytest.fixture
def table():
    t = TypeTable(CompilerConfig(word_width=4, addr_width=3, heap_cells=5))
    t.declare("list", TupleT(UINT, PtrT(NamedT("list"))))
    return t


def lit(n):
    return AtomE(Lit(UIntV(n)))


class TestAssign:
    def test_simple_assign(self, table):
        ctx = check_program(Assign("x", lit(1)), table)
        assert "x" in ctx.vars

    def test_redeclaration_same_type_ok(self, table):
        s = seq(Assign("x", lit(1)), Assign("x", lit(2)))
        check_program(s, table)

    def test_redeclaration_new_type_rejected(self, table):
        s = seq(Assign("x", lit(1)), Assign("x", AtomE(Lit(BoolV(True)))))
        with pytest.raises(TypeCheckError):
            check_program(s, table)

    def test_self_reference_rejected(self, table):
        s = seq(Assign("x", lit(1)), Assign("x", BinOp("+", Var("x"), Lit(UIntV(1)))))
        with pytest.raises(TypeCheckError):
            check_program(s, table)

    def test_unassign_removes_binding(self, table):
        s = seq(Assign("x", lit(1)), UnAssign("x", lit(1)))
        ctx = check_program(s, table)
        assert "x" not in ctx.vars

    def test_unassign_wrong_type_rejected(self, table):
        s = seq(Assign("x", lit(1)), UnAssign("x", AtomE(Lit(BoolV(False)))))
        with pytest.raises(TypeCheckError):
            check_program(s, table)

    def test_unassign_unbound_rejected(self, table):
        with pytest.raises(TypeCheckError):
            check_program(UnAssign("x", lit(1)), table)


class TestExpressions:
    def test_projection_types(self, table):
        s = seq(
            Assign("t", Pair(Lit(UIntV(1)), Lit(BoolV(True)))),
            Assign("a", Proj(1, Var("t"))),
            Assign("b", Proj(2, Var("t"))),
        )
        ctx = check_program(s, table)
        assert table.equal(ctx.vars["a"], UINT)
        assert table.equal(ctx.vars["b"], BOOL)

    def test_projection_from_non_tuple_rejected(self, table):
        s = seq(Assign("x", lit(1)), Assign("y", Proj(1, Var("x"))))
        with pytest.raises(TypeCheckError):
            check_program(s, table)

    def test_not_requires_bool(self, table):
        s = seq(Assign("x", lit(1)), Assign("y", UnOp("not", Var("x"))))
        with pytest.raises(TypeCheckError):
            check_program(s, table)

    def test_test_requires_uint_or_ptr(self, table):
        s = seq(
            Assign("b", AtomE(Lit(BoolV(True)))),
            Assign("y", UnOp("test", Var("b"))),
        )
        with pytest.raises(TypeCheckError):
            check_program(s, table)

    def test_arith_requires_uints(self, table):
        s = seq(
            Assign("b", AtomE(Lit(BoolV(True)))),
            Assign("y", BinOp("+", Var("b"), Var("b"))),
        )
        with pytest.raises(TypeCheckError):
            check_program(s, table)

    def test_pointers_not_ordered(self, table):
        s = seq(
            Assign("p", AtomE(Lit(PtrV(0, NamedT("list"))))),
            Assign("y", BinOp("<", Var("p"), Var("p"))),
        )
        with pytest.raises(TypeCheckError):
            check_program(s, table)


class TestControlFlow:
    def test_if_requires_bool_condition(self, table):
        s = seq(Assign("x", lit(1)), If("x", Hadamard("x")))
        with pytest.raises(TypeCheckError):
            check_program(s, table)

    def test_if_body_must_not_modify_condition(self, table):
        s = seq(
            Assign("c", AtomE(Lit(BoolV(True)))),
            If("c", Assign("c", AtomE(Lit(BoolV(True))))),
        )
        with pytest.raises(TypeCheckError):
            check_program(s, table)

    def test_if_body_unassigning_outer_var_rejected(self, table):
        s = seq(
            Assign("c", AtomE(Lit(BoolV(True)))),
            Assign("x", lit(1)),
            If("c", UnAssign("x", lit(1))),
        )
        with pytest.raises(TypeCheckError):
            check_program(s, table)

    def test_if_body_unassigning_outer_var_ok_when_relaxed(self, table):
        s = seq(
            Assign("c", AtomE(Lit(BoolV(True)))),
            Assign("x", lit(1)),
            If("c", UnAssign("x", lit(1))),
        )
        check_program(s, table, relaxed=True)

    def test_with_restores_domain(self, table):
        s = With(Assign("t", lit(1)), Assign("y", AtomE(Var("t"))))
        ctx = check_program(s, table)
        assert "t" not in ctx.vars
        assert "y" in ctx.vars

    def test_guarded_redeclaration_pattern(self, table):
        # with { fu <- 0; if g { fu <- 1 } } do { ... } — the reversal
        # un-assigns fu twice (multi-binding context).
        s = seq(
            Assign("g", AtomE(Lit(BoolV(True)))),
            With(
                seq(Assign("fu", lit(0)), If("g", Assign("fu", lit(1)))),
                Skip_like(),
            ),
        )
        check_program(s, table)


def Skip_like():
    from repro.ir import Skip

    return Skip()


class TestDataStatements:
    def test_swap_same_variable_rejected(self, table):
        s = seq(Assign("x", lit(1)), Swap("x", "x"))
        with pytest.raises(TypeCheckError):
            check_program(s, table)

    def test_swap_type_mismatch_rejected(self, table):
        s = seq(
            Assign("x", lit(1)),
            Assign("b", AtomE(Lit(BoolV(True)))),
            Swap("x", "b"),
        )
        with pytest.raises(TypeCheckError):
            check_program(s, table)

    def test_memswap_requires_pointer(self, table):
        s = seq(Assign("x", lit(1)), Assign("v", lit(0)), MemSwap("x", "v"))
        with pytest.raises(TypeCheckError):
            check_program(s, table)

    def test_memswap_element_type_must_match(self, table):
        s = seq(
            Assign("p", AtomE(Lit(PtrV(1, NamedT("list"))))),
            Assign("v", lit(0)),
            MemSwap("p", "v"),
        )
        with pytest.raises(TypeCheckError):
            check_program(s, table)

    def test_hadamard_requires_bool(self, table):
        s = seq(Assign("x", lit(1)), Hadamard("x"))
        with pytest.raises(TypeCheckError):
            check_program(s, table)


class TestInferTypes:
    def test_collects_all_variables(self, table):
        s = With(Assign("t", lit(1)), Assign("y", AtomE(Var("t"))))
        types = infer_types(s, table)
        assert set(types) == {"t", "y"}

    def test_includes_inputs(self, table):
        types = infer_types(Assign("y", AtomE(Var("x"))), table, {"x": UINT})
        assert set(types) == {"x", "y"}
