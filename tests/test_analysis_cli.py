"""CLI contract for `repro lint` and `repro analyze --symbolic`.

Exit codes are part of the interface: 0 clean, 1 findings at error
severity, 2 usage error, 3 internal analysis defect.
"""

from __future__ import annotations

import json
import shutil
import subprocess
import sys
from pathlib import Path

import pytest

from repro.cli import (
    EXIT_FINDINGS,
    EXIT_INTERNAL,
    EXIT_OK,
    EXIT_USAGE,
    main,
)
from repro.errors import AnalysisError

REPO = Path(__file__).resolve().parent.parent

CLEAN_SRC = """
fun main(x: uint) -> uint {
  let y <- x + 1;
  return y;
}
"""

WARN_SRC = """
fun main(x: uint) -> uint {
  let dead <- x + 1;
  let y <- x;
  return y;
}
"""


@pytest.fixture
def clean_file(tmp_path):
    path = tmp_path / "clean.twr"
    path.write_text(CLEAN_SRC)
    return str(path)


@pytest.fixture
def warn_file(tmp_path):
    path = tmp_path / "warn.twr"
    path.write_text(WARN_SRC)
    return str(path)


@pytest.fixture
def broken_file(tmp_path):
    path = tmp_path / "broken.twr"
    path.write_text("fun main( {")
    return str(path)


@pytest.fixture
def length_file(tmp_path, length_source):
    path = tmp_path / "length.twr"
    path.write_text(length_source)
    return str(path)


class TestLintExitCodes:
    def test_clean_is_zero(self, clean_file, capsys):
        assert main(["lint", clean_file]) == EXIT_OK
        assert "clean" in capsys.readouterr().out

    def test_warnings_only_is_zero(self, warn_file, capsys):
        assert main(["lint", warn_file]) == EXIT_OK
        out = capsys.readouterr().out
        assert "RPA102" in out

    def test_parse_error_is_findings(self, broken_file, capsys):
        assert main(["lint", broken_file]) == EXIT_FINDINGS
        assert "RPA001" in capsys.readouterr().out

    def test_unknown_entry_is_findings(self, length_file, capsys):
        code = main(["lint", length_file, "--entry", "nope"])
        assert code == EXIT_FINDINGS
        assert "RPA002" in capsys.readouterr().out

    def test_no_target_is_usage(self, capsys):
        assert main(["lint"]) == EXIT_USAGE
        err = capsys.readouterr().err
        assert "--table1" in err and "--codes" in err

    def test_internal_defect_is_three(self, clean_file, monkeypatch):
        import repro.analysis

        def boom(*args, **kwargs):
            raise AnalysisError("fixpoint diverged")

        monkeypatch.setattr(repro.analysis, "lint_source", boom)
        assert main(["lint", clean_file]) == EXIT_INTERNAL


class TestLintOutput:
    def test_codes_catalog(self, capsys):
        assert main(["lint", "--codes"]) == EXIT_OK
        out = capsys.readouterr().out
        for code in ("RPA001", "RPA101", "RPA203", "RPA301"):
            assert code in out

    def test_codes_catalog_json(self, capsys):
        assert main(["lint", "--codes", "--json"]) == EXIT_OK
        rows = json.loads(capsys.readouterr().out)
        assert [r["code"] for r in rows] == sorted(r["code"] for r in rows)

    def test_json_report_single_file(self, warn_file, capsys):
        assert main(["lint", warn_file, "--json"]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["path"] == warn_file
        codes = [d["code"] for d in payload["diagnostics"]]
        assert "RPA102" in codes

    def test_table1_lints_every_benchmark(self, capsys):
        assert main(["lint", "--table1", "--json"]) == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        from repro.benchsuite.programs import SOURCES

        assert len(payload) == len(SOURCES)
        assert all(p["max_severity"] != "error" for p in payload)


class TestAnalyzeSymbolic:
    def test_human_output(self, length_file, capsys):
        code = main(
            ["analyze", length_file, "--symbolic", "--entry", "length",
             "--optimize", "spire", "--word-width", "3",
             "--addr-width", "3", "--heap-cells", "6"]
        )
        assert code == EXIT_OK
        out = capsys.readouterr().out
        assert "T(d)" in out and "MCX(d)" in out

    def test_json_output(self, length_file, capsys):
        code = main(
            ["analyze", length_file, "--symbolic", "--json", "--entry",
             "length", "--optimize", "spire", "--word-width", "3",
             "--addr-width", "3", "--heap-cells", "6"]
        )
        assert code == EXIT_OK
        payload = json.loads(capsys.readouterr().out)
        assert payload["entry"] == "length"
        assert payload["preset"] == "spire"
        assert payload["functions"][0]["function"] == "length"

    def test_internal_defect_is_three(self, length_file, monkeypatch):
        import repro.analysis

        def boom(*args, **kwargs):
            raise AnalysisError("series did not stabilize")

        monkeypatch.setattr(repro.analysis, "symbolic_cost", boom)
        code = main(
            ["analyze", length_file, "--symbolic", "--entry", "length"]
        )
        assert code == EXIT_INTERNAL


# ------------------------------------------------- optional static tooling
@pytest.mark.skipif(shutil.which("ruff") is None, reason="ruff not installed")
def test_ruff_clean_on_analysis_package():
    result = subprocess.run(
        ["ruff", "check", "--select", "F", "src/repro/analysis"],
        cwd=REPO, capture_output=True, text=True, timeout=300,
    )
    assert result.returncode == 0, result.stdout + result.stderr


@pytest.mark.skipif(shutil.which("mypy") is None, reason="mypy not installed")
def test_mypy_clean_on_strict_packages():
    result = subprocess.run(
        [sys.executable, "-m", "mypy", "src/repro/analysis",
         "src/repro/errors.py", "src/repro/types.py"],
        cwd=REPO, capture_output=True, text=True, timeout=600,
    )
    assert result.returncode == 0, result.stdout + result.stderr
