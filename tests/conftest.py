"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.benchsuite import BenchmarkRunner
from repro.config import CompilerConfig

#: Small config used by most tests (fast circuits, simulable widths).
TINY = CompilerConfig(word_width=3, addr_width=3, heap_cells=5)

#: Config wide enough for the benchmark data structures.
BENCH = CompilerConfig(word_width=4, addr_width=4, heap_cells=14)

LENGTH_SRC = """
type list = (uint, ptr<list>);
fun length[n](xs: ptr<list>, acc: uint) -> uint {
  with { let is_empty <- xs == null; } do
  if is_empty { let out <- acc; }
  else with {
    let temp <- default<list>;
    *xs <-> temp;
    let next <- temp.2;
    let r <- acc + 1;
  } do { let out <- length[n-1](next, r); }
  return out;
}
"""


@pytest.fixture(scope="session")
def tiny_config() -> CompilerConfig:
    return TINY


@pytest.fixture(scope="session")
def bench_config() -> CompilerConfig:
    return BENCH


@pytest.fixture(scope="session")
def length_source() -> str:
    return LENGTH_SRC


@pytest.fixture(scope="session")
def tiny_runner() -> BenchmarkRunner:
    return BenchmarkRunner(TINY)


@pytest.fixture(scope="session")
def bench_runner() -> BenchmarkRunner:
    return BenchmarkRunner(BENCH)
