"""Symbolic cost bounds vs. the exact model and compiled circuits.

The fast tests validate the closed-form machinery and a representative
benchmark subset; the ``fuzz``-marked sweep validates every Table-1
program under every preset across full depth ranges, plus the static
bound against hundreds of generated programs (via the fuzz oracle).
"""

from __future__ import annotations

from fractions import Fraction

import pytest

from repro.analysis import (
    ClosedForm,
    fit_closed_form,
    static_bounds,
    symbolic_cost,
)
from repro.benchsuite.programs import (
    SOURCES,
    get_entry,
    get_source,
    is_unsized,
)
from repro.compiler import compile_source
from repro.config import CompilerConfig
from repro.cost.exact import exact_counts
from repro.errors import AnalysisError
from repro.lang.desugar import lower_entry
from repro.lang.parser import parse_program
from repro.opt import OPTIMIZATIONS

CFG = CompilerConfig(word_width=3, addr_width=3, heap_cells=6)
PRESETS = tuple(sorted(OPTIMIZATIONS))


class TestClosedForm:
    def test_fit_linear(self):
        cf = fit_closed_form({1: 10, 2: 17, 3: 24, 4: 31}, degree_bound=1)
        assert cf.degree == 1
        assert cf.coeffs == (Fraction(3), Fraction(7))
        assert cf.valid_from == 1
        for d in range(1, 10):
            assert cf.evaluate(d) == 3 + 7 * d

    def test_low_depth_table(self):
        # d=1 breaks the pattern: kept as an exact table entry
        series = {1: 99, 2: 17, 3: 24, 4: 31, 5: 38}
        cf = fit_closed_form(series, degree_bound=1)
        assert cf.valid_from == 2
        assert cf.evaluate(1) == 99
        assert cf.evaluate(3) == 24
        assert cf.evaluate(50) == 3 + 7 * 50

    def test_degree_violation_raises(self):
        quadratic = {d: d * d for d in range(1, 6)}
        with pytest.raises(AnalysisError):
            fit_closed_form(quadratic, degree_bound=1)

    def test_constant_series(self):
        cf = fit_closed_form({1: 5, 2: 5, 3: 5}, degree_bound=2)
        assert cf.degree == 0
        assert cf.evaluate(7) == 5

    def test_missing_low_depth_raises(self):
        cf = ClosedForm((Fraction(2), Fraction(3)), valid_from=4,
                        exact=((2, 11),))
        assert cf.evaluate(2) == 11
        with pytest.raises(AnalysisError):
            cf.evaluate(3)


class TestStaticBounds:
    def test_equals_exact_model(self, length_source):
        program = parse_program(length_source)
        lowered = lower_entry(program, "length", 3, CFG)
        stmt = OPTIMIZATIONS["spire"](lowered.stmt)
        from repro.analysis import counts_for_stmt

        direct = counts_for_stmt(stmt, lowered.table, lowered.param_types)
        assert static_bounds(program, "length", 3, "spire", CFG) == direct

    def test_unknown_preset_raises(self, length_source):
        with pytest.raises(AnalysisError):
            static_bounds(parse_program(length_source), "length", 3,
                          "turbo", CFG)

    @pytest.mark.parametrize("preset", PRESETS)
    def test_matches_compiled_circuit(self, length_source, preset):
        program = parse_program(length_source)
        for depth in (1, 2, 4):
            compiled = compile_source(
                length_source, "length", depth, CFG, preset
            )
            assert static_bounds(program, "length", depth, preset, CFG) == (
                compiled.mcx_complexity(),
                compiled.t_complexity(),
            )


class TestSymbolic:
    def test_length_closed_forms(self, length_source):
        program = parse_program(length_source)
        report = symbolic_cost(program, "length", "spire", CFG)
        assert report.entry == "length"
        assert report.size_param is not None
        bound = report.entry_bound
        assert bound.sized
        assert bound.t.degree <= 2
        # the closed form extrapolates beyond the probed window
        probe_max = max(bound.depths)
        for depth in (1, 2, probe_max + 3):
            compiled = compile_source(
                length_source, "length", depth, CFG, "spire"
            )
            assert report.evaluate(depth) == (
                compiled.mcx_complexity(),
                compiled.t_complexity(),
            )

    def test_recurrence_rendered(self, length_source):
        report = symbolic_cost(
            parse_program(length_source), "length", "spire", CFG
        )
        rec = report.entry_bound.recurrence
        assert rec.startswith("recurrence: T_length(d) = ")
        assert "T_length(d-1)" in rec

    def test_unsized_entry_is_constant(self):
        source = get_source("pop_front")
        program = parse_program(source)
        report = symbolic_cost(program, get_entry("pop_front"), "none", CFG)
        bound = report.entry_bound
        assert not bound.sized
        assert bound.t.degree == 0
        compiled = compile_source(
            source, get_entry("pop_front"), None, CFG, "none"
        )
        assert report.evaluate(None) == (
            compiled.mcx_complexity(),
            compiled.t_complexity(),
        )

    def test_callee_bounds_included(self):
        program = parse_program(get_source("contains"))
        report = symbolic_cost(program, "contains", "spire", CFG)
        names = [fb.name for fb in report.functions]
        assert names[0] == "contains"
        assert "compare" in names
        # nested recursion: contains is one degree above compare
        by_name = {fb.name: fb for fb in report.functions}
        assert by_name["contains"].t.degree == by_name["compare"].t.degree + 1

    def test_rows_and_render_shared_report_path(self, length_source):
        report = symbolic_cost(
            parse_program(length_source), "length", "none", CFG
        )
        rows = report.rows()
        assert rows[0]["function"] == "length"
        assert isinstance(rows[0]["t"], str)
        human = report.render_human()
        assert "T(d)" in human and "MCX(d)" in human


# --------------------------------------------------------- exhaustive sweep
@pytest.mark.fuzz
@pytest.mark.parametrize("preset", PRESETS)
@pytest.mark.parametrize("name", sorted(SOURCES))
def test_symbolic_bounds_dominate_all_benchmarks(name, preset):
    """Every Table-1 program: the fitted closed form equals the exact cost
    model AND the compiled circuit at every depth in the paper's range."""
    source = get_source(name)
    entry = get_entry(name)
    program = parse_program(source)
    report = symbolic_cost(program, entry, preset, CFG)
    depths = [None] if is_unsized(name) else list(range(1, 9))
    for depth in depths:
        compiled = compile_source(source, entry, depth, CFG, preset)
        mcx, t = report.evaluate(depth)
        assert (mcx, t) == (
            compiled.mcx_complexity(),
            compiled.t_complexity(),
        ), f"{name}@{depth} [{preset}]"
        direct = exact_counts(
            compiled.core, compiled.table, compiled.var_types,
            compiled.cell_bits,
        )
        assert (mcx, t) == direct


@pytest.mark.fuzz
def test_static_bound_oracle_over_fuzz_seeds():
    """>= 200 generated programs: the static bound equals compiled counts
    under every preset (the check_static_analysis oracle path)."""
    from repro.fuzz import GenConfig, OracleConfig, check_generated

    gen = GenConfig()
    cfg = OracleConfig(check_optimizers=False, check_statevector=False,
                       n_inputs=1)
    failures = []
    for seed in range(200):
        report = check_generated(seed, gen, cfg)
        if not report.ok:
            failures.append((seed, report.oracle, report.message))
    assert not failures, failures[:5]
