"""The `analyze` pipeline stage: registration, static bound, verification."""

from __future__ import annotations

import pytest

from repro.analysis.passes import StaticCostBound, apply_ir_passes_statically
from repro.compiler import compile_source
from repro.config import CompilerConfig
from repro.cost.exact import exact_counts
from repro.errors import ReproError
from repro.lang.desugar import lower_entry
from repro.lang.parser import parse_program
from repro.passes import (
    canonical_pipeline,
    pass_catalog,
    resolve_pipeline,
)

CFG = CompilerConfig(word_width=3, addr_width=3, heap_cells=6)


class TestRegistration:
    def test_analyze_is_a_registered_pass(self):
        rows = pass_catalog()
        analyze = [r for r in rows if r["name"] == "analyze"]
        assert len(analyze) == 1
        assert analyze[0]["stage"] == "analyze"

    def test_analyze_sorts_before_ir_passes(self):
        assert (
            canonical_pipeline("analyze,flatten,narrow")
            == "analyze,flatten,narrow,alloc,lower"
        )
        pipe = resolve_pipeline("analyze,flatten,narrow")
        assert [p.name for p in pipe.analyze_passes] == ["analyze"]

    def test_analyze_after_lower_rejected(self):
        from repro.passes import Pipeline

        with pytest.raises(ReproError):
            Pipeline.parse("alloc,lower,analyze")

    def test_ir_prefixes_keep_the_analyze_head(self):
        pipe = resolve_pipeline("analyze,flatten,narrow")
        prefixes = [p.spec() for p in pipe.ir_prefixes()]
        assert all(p.startswith("analyze,") for p in prefixes)
        assert prefixes[-1] == pipe.spec()


class TestStaticBoundInPipeline:
    def test_bound_is_attached_and_exact(self, length_source):
        cp = compile_source(
            length_source, "length", 3, CFG,
            "analyze,flatten,narrow,alloc,lower",
        )
        assert isinstance(cp.analysis, StaticCostBound)
        assert cp.analysis.pipeline == cp.pipeline
        assert (cp.analysis.mcx, cp.analysis.t) == (
            cp.mcx_complexity(), cp.t_complexity(),
        )
        # the clean benchmark has no core-IR findings
        assert cp.analysis.diagnostics == ()

    def test_bound_prices_this_pipelines_rewrite(self, length_source):
        """The bound differs across pipelines because it prices the
        statement *after* this pipeline's own IR passes."""
        plain = compile_source(
            length_source, "length", 3, CFG, "analyze,alloc,lower"
        )
        flat = compile_source(
            length_source, "length", 3, CFG, "analyze,flatten,alloc,lower"
        )
        assert plain.analysis.t != flat.analysis.t
        assert plain.analysis.t == plain.t_complexity()
        assert flat.analysis.t == flat.t_complexity()

    def test_verify_checks_equality_at_lower(self, length_source):
        cp = compile_source(
            length_source, "length", 3, CFG,
            "analyze,flatten,narrow,alloc,lower", verify=True,
        )
        assert cp.analysis is not None

    def test_verify_final_t_count_below_bound(self, length_source):
        cp = compile_source(
            length_source, "length", 3, CFG,
            "analyze,flatten,narrow,alloc,lower,peephole", verify=True,
        )
        assert cp.circuit.t_count() <= cp.analysis.t

    def test_pipeline_without_analyze_has_no_bound(self, length_source):
        cp = compile_source(length_source, "length", 3, CFG, "spire")
        assert cp.analysis is None


class TestStaticApplication:
    @pytest.mark.parametrize("preset", ["flatten", "narrow", "spire"])
    def test_static_rewrite_matches_the_manager(self, length_source, preset):
        """apply_ir_passes_statically must produce the same statement the
        manager's (possibly engine-fused) run does."""
        program = parse_program(length_source)
        lowered = lower_entry(program, "length", 3, CFG)
        pipe = resolve_pipeline(preset)
        static_stmt = apply_ir_passes_statically(
            pipe, lowered.stmt, lowered.table, lowered.param_types, CFG
        )
        cp = compile_source(length_source, "length", 3, CFG, preset)
        assert static_stmt == cp.core
        counts = exact_counts(
            static_stmt, cp.table, cp.var_types, cp.cell_bits
        )
        assert counts == (cp.mcx_complexity(), cp.t_complexity())
