"""Instruction-semantics tests: every abstract instruction, executed as gates.

For each instruction the expanded gate sequence is run through the classical
simulator on exhaustive (small-width) operand values and compared against
plain Python arithmetic — the gold-standard check of the gate lowering.
Scratch qubits must always return to zero.
"""

import itertools

import pytest

from repro.circuit.circuit import Circuit, Register
from repro.circuit import classical_sim
from repro.compiler.abstract import (
    AddInto,
    AndBit,
    EqConst,
    EqReg,
    LtInto,
    MemSwapInstr,
    MulInto,
    NotBit,
    OrBit,
    SubInto,
    SwapReg,
    XorConst,
    XorReg,
)
from repro.compiler.lower_gates import InstructionExpander, MemoryLayout, ScratchPool

W = 3  # operand width for exhaustive tests
MASK = (1 << W) - 1


def execute(instr, values, layout, word_width=W, memory=None):
    """Expand one instruction and run it classically.

    ``layout``: dict name -> (offset, width); ``values``: name -> int.
    Returns final values plus ``"%scratch_dirty"`` flag.
    """
    top = max(off + width for off, width in layout.values())
    scratch = ScratchPool(top)
    expander = InstructionExpander(scratch, memory, word_width)
    gates = expander.expand(instr)
    state = 0
    for name, value in values.items():
        off, width = layout[name]
        state |= (value & ((1 << width) - 1)) << off
    circ = Circuit(max(scratch.high_water, top), gates)
    final = classical_sim.run(circ, state)
    out = {}
    for name, (off, width) in layout.items():
        out[name] = (final >> off) & ((1 << width) - 1)
    scratch_bits = final >> top
    out["%scratch_dirty"] = scratch_bits != 0
    return out


def reg(name, layout):
    off, width = layout[name]
    return Register(name, off, width)


LAYOUT3 = {"d": (0, W), "a": (W, W), "b": (2 * W, W)}
LAYOUT_BIT = {"d": (0, 1), "a": (1, 1), "b": (2, 1)}


class TestArithmetic:
    @pytest.mark.parametrize("a,b", list(itertools.product(range(8), repeat=2)))
    def test_add(self, a, b):
        instr = AddInto((), reg("d", LAYOUT3), reg("a", LAYOUT3), reg("b", LAYOUT3))
        out = execute(instr, {"a": a, "b": b, "d": 5}, LAYOUT3)
        assert out["d"] == 5 ^ ((a + b) & MASK)
        assert not out["%scratch_dirty"]
        assert out["a"] == a and out["b"] == b

    @pytest.mark.parametrize("a,b", list(itertools.product(range(8), repeat=2)))
    def test_sub(self, a, b):
        instr = SubInto((), reg("d", LAYOUT3), reg("a", LAYOUT3), reg("b", LAYOUT3))
        out = execute(instr, {"a": a, "b": b, "d": 0}, LAYOUT3)
        assert out["d"] == (a - b) & MASK
        assert not out["%scratch_dirty"]

    @pytest.mark.parametrize("a,b", list(itertools.product(range(8), repeat=2)))
    def test_mul(self, a, b):
        instr = MulInto((), reg("d", LAYOUT3), reg("a", LAYOUT3), reg("b", LAYOUT3))
        out = execute(instr, {"a": a, "b": b, "d": 0}, LAYOUT3)
        assert out["d"] == (a * b) & MASK
        assert not out["%scratch_dirty"]

    @pytest.mark.parametrize("a", range(8))
    @pytest.mark.parametrize("const", [0, 1, 5, 7])
    def test_add_const(self, a, const):
        layout = {"d": (0, W), "a": (W, W)}
        instr = AddInto((), reg("d", layout), reg("a", layout), const)
        out = execute(instr, {"a": a, "d": 0}, layout)
        assert out["d"] == (a + const) & MASK

    @pytest.mark.parametrize("a", range(8))
    def test_sub_const(self, a):
        layout = {"d": (0, W), "a": (W, W)}
        instr = SubInto((), reg("d", layout), reg("a", layout), 3)
        out = execute(instr, {"a": a, "d": 0}, layout)
        assert out["d"] == (a - 3) & MASK

    @pytest.mark.parametrize("a", range(8))
    def test_const_minus_reg(self, a):
        layout = {"d": (0, W), "a": (W, W)}
        instr = SubInto((), reg("d", layout), 6, reg("a", layout))
        out = execute(instr, {"a": a, "d": 0}, layout)
        assert out["d"] == (6 - a) & MASK

    @pytest.mark.parametrize("a", range(8))
    def test_mul_const(self, a):
        layout = {"d": (0, W), "a": (W, W)}
        instr = MulInto((), reg("d", layout), reg("a", layout), 5)
        out = execute(instr, {"a": a, "d": 0}, layout)
        assert out["d"] == (a * 5) & MASK
        assert not out["%scratch_dirty"]

    @pytest.mark.parametrize("a", range(8))
    def test_add_self(self, a):
        layout = {"d": (0, W), "a": (W, W)}
        r = reg("a", layout)
        instr = AddInto((), reg("d", layout), r, r)
        out = execute(instr, {"a": a, "d": 0}, layout)
        assert out["d"] == (2 * a) & MASK

    @pytest.mark.parametrize("a", range(8))
    def test_mul_self(self, a):
        layout = {"d": (0, W), "a": (W, W)}
        r = reg("a", layout)
        instr = MulInto((), reg("d", layout), r, r)
        out = execute(instr, {"a": a, "d": 0}, layout)
        assert out["d"] == (a * a) & MASK
        assert not out["%scratch_dirty"]


class TestComparisons:
    @pytest.mark.parametrize("a,b", list(itertools.product(range(8), repeat=2)))
    def test_lt(self, a, b):
        layout = {"d": (0, 1), "a": (1, W), "b": (1 + W, W)}
        instr = LtInto((), reg("d", layout), reg("a", layout), reg("b", layout))
        out = execute(instr, {"a": a, "b": b, "d": 0}, layout)
        assert out["d"] == int(a < b)
        assert not out["%scratch_dirty"]

    @pytest.mark.parametrize("a,b", list(itertools.product(range(8), repeat=2)))
    def test_eq_reg(self, a, b):
        layout = {"d": (0, 1), "a": (1, W), "b": (1 + W, W)}
        instr = EqReg((), reg("d", layout), reg("a", layout), reg("b", layout))
        out = execute(instr, {"a": a, "b": b, "d": 0}, layout)
        assert out["d"] == int(a == b)
        assert not out["%scratch_dirty"]

    @pytest.mark.parametrize("a", range(8))
    @pytest.mark.parametrize("const", [0, 3, 7])
    def test_eq_const_and_negation(self, a, const):
        layout = {"d": (0, 1), "a": (1, W)}
        out = execute(
            EqConst((), reg("d", layout), reg("a", layout), const), {"a": a, "d": 0}, layout
        )
        assert out["d"] == int(a == const)
        out = execute(
            EqConst((), reg("d", layout), reg("a", layout), const, negate=True),
            {"a": a, "d": 0},
            layout,
        )
        assert out["d"] == int(a != const)

    @pytest.mark.parametrize("a", range(8))
    def test_lt_const_operands(self, a):
        layout = {"d": (0, 1), "a": (1, W)}
        out = execute(
            LtInto((), reg("d", layout), reg("a", layout), 4), {"a": a, "d": 0}, layout
        )
        assert out["d"] == int(a < 4)
        out = execute(
            LtInto((), reg("d", layout), 4, reg("a", layout)), {"a": a, "d": 0}, layout
        )
        assert out["d"] == int(4 < a)


class TestBitOps:
    @pytest.mark.parametrize("a,b", list(itertools.product([0, 1], repeat=2)))
    def test_and_or(self, a, b):
        out = execute(
            AndBit((), reg("d", LAYOUT_BIT), reg("a", LAYOUT_BIT), reg("b", LAYOUT_BIT)),
            {"a": a, "b": b, "d": 0},
            LAYOUT_BIT,
            word_width=1,
        )
        assert out["d"] == (a & b)
        out = execute(
            OrBit((), reg("d", LAYOUT_BIT), reg("a", LAYOUT_BIT), reg("b", LAYOUT_BIT)),
            {"a": a, "b": b, "d": 0},
            LAYOUT_BIT,
            word_width=1,
        )
        assert out["d"] == (a | b)

    @pytest.mark.parametrize("a", [0, 1])
    @pytest.mark.parametrize("const", [0, 1])
    def test_and_or_with_const(self, a, const):
        layout = {"d": (0, 1), "a": (1, 1)}
        out = execute(
            AndBit((), reg("d", layout), reg("a", layout), const), {"a": a, "d": 0}, layout, 1
        )
        assert out["d"] == (a & const)
        out = execute(
            OrBit((), reg("d", layout), reg("a", layout), const), {"a": a, "d": 0}, layout, 1
        )
        assert out["d"] == (a | const)

    @pytest.mark.parametrize("a", [0, 1])
    def test_not(self, a):
        layout = {"d": (0, 1), "a": (1, 1)}
        out = execute(NotBit((), reg("d", layout), reg("a", layout)), {"a": a, "d": 0}, layout, 1)
        assert out["d"] == 1 - a

    @pytest.mark.parametrize("a", [0, 1])
    def test_same_operand_and(self, a):
        layout = {"d": (0, 1), "a": (1, 1)}
        r = reg("a", layout)
        out = execute(AndBit((), reg("d", layout), r, r), {"a": a, "d": 0}, layout, 1)
        assert out["d"] == a


class TestDataMovement:
    def test_xor_const(self):
        layout = {"d": (0, W)}
        out = execute(XorConst((), reg("d", layout), 0b101), {"d": 0b011}, layout)
        assert out["d"] == 0b110

    def test_xor_reg(self):
        layout = {"d": (0, W), "a": (W, W)}
        out = execute(XorReg((), reg("d", layout), reg("a", layout)), {"d": 3, "a": 5}, layout)
        assert out["d"] == 3 ^ 5

    @pytest.mark.parametrize("a,b", [(0, 0), (3, 5), (7, 1)])
    def test_swap(self, a, b):
        layout = {"a": (0, W), "b": (W, W)}
        out = execute(
            SwapReg((), reg("a", layout), reg("b", layout)), {"a": a, "b": b}, layout
        )
        assert (out["a"], out["b"]) == (b, a)


class TestMemSwap:
    LAYOUT = {"p": (12, 2), "v": (14, 4)}  # memory: 3 cells x 4 bits at 0..11
    MEM = MemoryLayout(heap_cells=3, cell_bits=4, base=0)

    def run_memswap(self, addr, value, cells):
        layout = dict(self.LAYOUT)
        for a, cell in enumerate(cells, start=1):
            layout[f"m{a}"] = ((a - 1) * 4, 4)
        values = {"p": addr, "v": value}
        for a, cell in enumerate(cells, start=1):
            values[f"m{a}"] = cell
        instr = MemSwapInstr((), reg("p", layout), reg("v", layout))
        return execute(instr, values, layout, word_width=4, memory=self.MEM)

    def test_swap_with_cell(self):
        out = self.run_memswap(2, 0xA, [1, 2, 3])
        assert out["v"] == 2
        assert out["m2"] == 0xA
        assert out["m1"] == 1 and out["m3"] == 3
        assert not out["%scratch_dirty"]

    def test_null_address_is_noop(self):
        out = self.run_memswap(0, 0xA, [1, 2, 3])
        assert out["v"] == 0xA
        assert [out["m1"], out["m2"], out["m3"]] == [1, 2, 3]

    def test_each_address(self):
        for addr in (1, 2, 3):
            out = self.run_memswap(addr, 0xF, [4, 5, 6])
            assert out["v"] == [4, 5, 6][addr - 1]
            assert out[f"m{addr}"] == 0xF


class TestControls:
    def test_controls_gate_everything(self):
        # an AddInto with an unsatisfied control must be the identity
        layout = {"d": (0, W), "a": (W, W), "b": (2 * W, W), "c": (2 * W + W, 1)}
        instr = AddInto(
            (layout["c"][0],), reg("d", layout), reg("a", layout), reg("b", layout)
        )
        out = execute(instr, {"a": 3, "b": 4, "d": 0, "c": 0}, layout)
        assert out["d"] == 0
        out = execute(instr, {"a": 3, "b": 4, "d": 0, "c": 1}, layout)
        assert out["d"] == 7

    def test_instruction_gates_are_involutions(self):
        # running the same instruction twice must be the identity (this is
        # why un-assignment reuses the assignment's instructions)
        layout = {"d": (0, W), "a": (W, W), "b": (2 * W, W)}
        scratch = ScratchPool(3 * W)
        expander = InstructionExpander(scratch, None, W)
        for instr in [
            AddInto((), reg("d", layout), reg("a", layout), reg("b", layout)),
            MulInto((), reg("d", layout), reg("a", layout), reg("b", layout)),
            EqReg((), Register("d", 0, 1), reg("a", layout), reg("b", layout)),
        ]:
            gates = expander.expand(instr)
            circ = Circuit(max(scratch.high_water, 3 * W), gates + gates)
            for probe in (0, 0b101101, 0b111000):
                assert classical_sim.run(circ, probe) == probe
