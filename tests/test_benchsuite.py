"""Benchmark-program correctness (interpreter + compiled circuit) and
Table 1 asymptotics."""

import pytest

from repro.benchsuite import ENTRIES, SOURCES, BenchmarkRunner, HeapImage
from repro.circuit import classical_sim
from repro.config import CompilerConfig
from repro.ir import run_program
from repro.lang import lower_source

CFG = CompilerConfig(word_width=4, addr_width=4, heap_cells=14)


def run_interp(name, size, inputs, heap):
    low = lower_source(SOURCES[name], ENTRIES[name], size=size, config=CFG)
    machine = run_program(
        low.stmt, low.table, inputs=inputs, input_types=low.param_types,
        memory=heap.as_memory(),
    )
    dirty = {
        k: v
        for k, v in machine.registers.items()
        if v and k not in inputs and k != low.return_var
    }
    assert not dirty, dirty
    return machine.registers.get(low.return_var, 0), machine


def run_circuit(name, size, inputs, heap, optimization="none"):
    runner = BenchmarkRunner(CFG)
    cp = runner.compile(name, size, optimization)
    circuit_inputs = dict(inputs)
    circuit_inputs.update(heap.as_registers())
    out = classical_sim.run_on_registers(cp.circuit, circuit_inputs)
    return out[cp.return_var], out


class TestListOperations:
    @pytest.mark.parametrize("values,expect", [([], 0), ([9], 1), ([7, 5, 3], 3)])
    def test_length(self, values, expect):
        heap = HeapImage(CFG)
        head = heap.add_list(values)
        got, _ = run_interp("length", 5, {"xs": head, "acc": 0}, heap)
        assert got == expect

    def test_length_depth_bound_semantics(self):
        # Section 3.1: length[n] returns the length only if it is < n
        heap = HeapImage(CFG)
        head = heap.add_list([1, 2, 3])
        got, _ = run_interp("length", 3, {"xs": head, "acc": 0}, heap)
        assert got == 0

    @pytest.mark.parametrize("values,expect", [([], 0), ([4, 9], 13), ([15, 1], 0)])
    def test_sum_mod_wordsize(self, values, expect):
        heap = HeapImage(CFG)
        head = heap.add_list(values)
        got, _ = run_interp("sum", 5, {"xs": head, "acc": 0}, heap)
        assert got == expect

    @pytest.mark.parametrize("v,expect", [(7, 1), (5, 2), (3, 3), (9, 0)])
    def test_find_pos(self, v, expect):
        heap = HeapImage(CFG)
        head = heap.add_list([7, 5, 3])
        got, _ = run_interp("find_pos", 5, {"xs": head, "v": v, "idx": 1}, heap)
        assert got == expect

    def test_remove_erases_first_match_only(self):
        heap = HeapImage(CFG)
        head = heap.add_list([7, 5, 5])
        got, machine = run_interp("remove", 5, {"xs": head, "v": 5, "idx": 1}, heap)
        assert got == 2
        assert machine.memory[2] & 0xF == 0  # erased
        assert machine.memory[3] & 0xF == 5  # second match untouched

    def test_remove_missing_value(self):
        heap = HeapImage(CFG)
        head = heap.add_list([7, 5, 3])
        got, machine = run_interp("remove", 5, {"xs": head, "v": 9, "idx": 1}, heap)
        assert got == 0
        assert machine.memory == heap.as_memory()

    def test_pop_front(self):
        heap = HeapImage(CFG)
        head = heap.add_list([7, 5])
        got, machine = run_interp("pop_front", None, {"xs": head}, heap)
        assert got == 7 | (2 << 4)
        assert machine.memory[1] == 0

    def test_push_back_appends(self):
        heap = HeapImage(CFG)
        head = heap.add_list([7, 5])
        free = heap.alloc()
        got, machine = run_interp(
            "push_back", 5, {"xs": head, "v": 9, "node": free}, heap
        )
        assert got == 1
        assert machine.memory[free] == 9
        assert machine.memory[2] >> 4 == free

    def test_push_back_null_list(self):
        heap = HeapImage(CFG)
        free = heap.alloc()
        got, _ = run_interp("push_back", 3, {"xs": 0, "v": 9, "node": free}, heap)
        assert got == 0


class TestStringOperations:
    @pytest.mark.parametrize(
        "a,b,expect",
        [([], [1, 2], 1), ([1], [1, 2], 1), ([1, 2], [1, 2], 1), ([2], [1, 2], 0), ([1, 2, 3], [1, 2], 0)],
    )
    def test_is_prefix(self, a, b, expect):
        heap = HeapImage(CFG)
        pa, pb = heap.add_string(a), heap.add_string(b)
        got, _ = run_interp("is_prefix", 5, {"a": pa, "b": pb}, heap)
        assert got == expect

    @pytest.mark.parametrize(
        "a,b,expect",
        [([1, 2, 3], [1, 9, 3], 2), ([], [1], 0), ([4], [4], 1)],
    )
    def test_num_matching(self, a, b, expect):
        heap = HeapImage(CFG)
        pa, pb = heap.add_string(a), heap.add_string(b)
        got, _ = run_interp("num_matching", 5, {"a": pa, "b": pb, "acc": 0}, heap)
        assert got == expect

    @pytest.mark.parametrize(
        "a,b,expect",
        [
            ([1, 2], [1, 2], 0),
            ([1, 2], [1, 3], 1),
            ([1, 4], [1, 3], 2),
            ([1], [1, 3], 1),
            ([1, 3], [1], 2),
            ([], [], 0),
        ],
    )
    def test_compare(self, a, b, expect):
        heap = HeapImage(CFG)
        pa, pb = heap.add_string(a), heap.add_string(b)
        got, _ = run_interp("compare", 4, {"a": pa, "b": pb}, heap)
        assert got == expect


class TestSetOperations:
    def make_tree(self, heap):
        # keys: [5] at root, [3] left, [7] right (left keys compare-less)
        return heap.add_tree(([5], ([3], None, None), ([7], None, None)))

    @pytest.mark.parametrize("key,expect", [([5], 1), ([3], 1), ([7], 1), ([4], 0)])
    def test_contains(self, key, expect):
        heap = HeapImage(CFG)
        root = self.make_tree(heap)
        kp = heap.add_string(key)
        got, _ = run_interp("contains", 3, {"t": root, "key": kp}, heap)
        assert got == expect

    def test_insert_links_new_leaf(self):
        heap = HeapImage(CFG)
        root = self.make_tree(heap)
        kp = heap.add_string([4])
        fresh = heap.alloc()
        heap.write(fresh, heap.encode_tree_node(kp, 0, 0))
        got, machine = run_interp(
            "insert", 3, {"t": root, "key": kp, "fresh": fresh}, heap
        )
        assert got == 1
        # re-run contains on the mutated heap
        heap2 = HeapImage(CFG)
        heap2.cells = {a: v for a, v in enumerate(machine.memory) if a and v}
        heap2._next = heap._next
        kp2 = heap2.add_string([4])
        got2, _ = run_interp("contains", 4, {"t": root, "key": kp2}, heap2)
        assert got2 == 1

    def test_insert_duplicate_is_noop(self):
        heap = HeapImage(CFG)
        root = self.make_tree(heap)
        kp = heap.add_string([3])
        fresh = heap.alloc()
        heap.write(fresh, heap.encode_tree_node(kp, 0, 0))
        got, machine = run_interp(
            "insert", 3, {"t": root, "key": kp, "fresh": fresh}, heap
        )
        assert got == 0
        assert machine.memory == heap.as_memory()


class TestCircuitDifferential:
    """Compiled circuits agree with the interpreter, all optimization modes."""

    @pytest.mark.parametrize("optimization", ["none", "spire"])
    @pytest.mark.parametrize(
        "name,inputs_builder",
        [
            ("length", lambda h: {"xs": h.add_list([7, 5, 3]), "acc": 0}),
            ("sum", lambda h: {"xs": h.add_list([4, 9]), "acc": 0}),
            ("find_pos", lambda h: {"xs": h.add_list([7, 5, 3]), "v": 5, "idx": 1}),
            ("remove", lambda h: {"xs": h.add_list([7, 5, 3]), "v": 5, "idx": 1}),
            ("pop_front", lambda h: {"xs": h.add_list([7, 5])}),
        ],
    )
    def test_list_benchmarks(self, name, inputs_builder, optimization):
        heap = HeapImage(CFG)
        inputs = inputs_builder(heap)
        size = None if name == "pop_front" else 4
        expected, machine = run_interp(name, size, dict(inputs), heap)
        got, out = run_circuit(name, size, inputs, heap, optimization)
        assert got == expected
        for addr in range(1, CFG.heap_cells + 1):
            assert out[f"mem[{addr}]"] == machine.memory[addr], addr

    @pytest.mark.parametrize("optimization", ["none", "spire"])
    def test_compare_circuit(self, optimization):
        heap = HeapImage(CFG)
        pa, pb = heap.add_string([1, 4]), heap.add_string([1, 3])
        expected, _ = run_interp("compare", 3, {"a": pa, "b": pb}, heap)
        got, _ = run_circuit("compare", 3, {"a": pa, "b": pb}, heap, optimization)
        assert got == expected == 2


class TestAsymptotics:
    """Table 1: degrees of the fitted complexity polynomials."""

    DEPTHS = [2, 3, 4, 5]

    @pytest.mark.parametrize(
        "name", ["length", "length-simplified", "sum", "find_pos", "remove", "push_back"]
    )
    def test_linear_benchmarks(self, tiny_runner, name):
        mcx = tiny_runner.scaling(name, self.DEPTHS, "none", "mcx")
        t_before = tiny_runner.scaling(name, self.DEPTHS, "none", "t")
        t_after = tiny_runner.scaling(name, self.DEPTHS, "spire", "t")
        assert mcx.fit.degree == 1, name
        assert t_before.fit.degree == 2, name
        assert t_after.fit.degree == 1, name

    @pytest.mark.parametrize("name", ["is_prefix", "num_matching", "compare"])
    def test_string_benchmarks(self, tiny_runner, name):
        assert tiny_runner.scaling(name, self.DEPTHS, "none", "mcx").fit.degree == 1
        assert tiny_runner.scaling(name, self.DEPTHS, "none", "t").fit.degree == 2
        assert tiny_runner.scaling(name, self.DEPTHS, "spire", "t").fit.degree == 1

    def test_pop_front_is_constant(self, tiny_runner):
        a = tiny_runner.measure("pop_front", None, "none")
        b = tiny_runner.measure("pop_front", None, "spire")
        assert a.t == b.t  # no control flow: nothing for Spire to do

    @pytest.mark.parametrize("name", ["contains"])
    def test_tree_benchmarks(self, tiny_runner, name):
        # four depths: enough to refute a quadratic fit for the unoptimized
        # program and to verify the quadratic fit after Spire; the benches
        # extend this to 2..8 (Table 1 uses 2..10).
        depths = [2, 3, 4, 5]
        assert tiny_runner.scaling(name, depths, "none", "mcx").fit.degree == 2
        assert tiny_runner.scaling(name, depths, "none", "t").fit.degree == 3
        assert tiny_runner.scaling(name, depths, "spire", "t").fit.degree == 2
