"""Determinism of the diagnostics engine: report rendering must be
byte-stable under input reordering, duplication, and process boundaries."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.analysis import (
    CATALOG,
    ERROR,
    INFO,
    WARNING,
    Diagnostic,
    catalog_rows,
    make_diagnostic,
    max_severity,
    render_human,
    render_json,
    sort_diagnostics,
)

SRC = Path(__file__).resolve().parent.parent / "src"

_diagnostics = st.builds(
    Diagnostic,
    line=st.integers(min_value=0, max_value=40),
    column=st.integers(min_value=0, max_value=20),
    code=st.sampled_from(sorted(CATALOG)),
    severity=st.sampled_from([ERROR, WARNING, INFO]),
    message=st.sampled_from(["a", "bb", "c c", "unused 'x'"]),
    function=st.sampled_from(["", "main", "helper"]),
)


class TestOrderIndependence:
    @given(
        diags=st.lists(_diagnostics, max_size=12),
        seed=st.randoms(use_true_random=False),
    )
    @settings(max_examples=60, deadline=None)
    def test_renderers_ignore_input_order(self, diags, seed):
        shuffled = list(diags)
        seed.shuffle(shuffled)
        # duplicates collapse too: the report is a set, not a log
        duplicated = shuffled + shuffled
        for variant in (shuffled, duplicated):
            assert render_human(variant) == render_human(diags)
            assert render_json(variant) == render_json(diags)
            assert sort_diagnostics(variant) == sort_diagnostics(diags)

    @given(diags=st.lists(_diagnostics, min_size=1, max_size=12))
    @settings(max_examples=60, deadline=None)
    def test_sorted_by_position_then_code(self, diags):
        out = sort_diagnostics(diags)
        keys = [(d.line, d.column, d.code) for d in out]
        assert keys == sorted(keys)
        assert len(out) == len(set(diags))


class TestRenderers:
    def test_human_summary_counts(self):
        diags = [
            make_diagnostic("RPA102", "dead"),
            make_diagnostic("RPA201", "const"),
            make_diagnostic("RPA001", "boom"),
        ]
        text = render_human(diags, path="x.twr")
        assert text.endswith("x.twr: 1 error, 2 warnings")

    def test_human_clean_summary(self):
        assert render_human([], path="x.twr") == "x.twr: clean"

    def test_json_is_valid_and_key_sorted(self):
        diags = [make_diagnostic("RPA102", "dead", function="f")]
        payload = json.loads(render_json(diags, path="x.twr"))
        assert payload["path"] == "x.twr"
        assert payload["max_severity"] == WARNING
        row = payload["diagnostics"][0]
        assert row["code"] == "RPA102"
        assert row["function"] == "f"

    def test_max_severity_ranks(self):
        assert max_severity([]) is None
        assert (
            max_severity(
                [
                    make_diagnostic("RPA103", "i"),
                    make_diagnostic("RPA102", "w"),
                ]
            )
            == WARNING
        )
        assert (
            max_severity(
                [
                    make_diagnostic("RPA102", "w"),
                    make_diagnostic("RPA001", "e"),
                ]
            )
            == ERROR
        )

    def test_unknown_code_rejected(self):
        with pytest.raises(KeyError):
            make_diagnostic("RPA999", "nope")

    def test_catalog_rows_stable_and_sorted(self):
        rows = catalog_rows()
        assert rows == catalog_rows()
        assert [r["code"] for r in rows] == sorted(CATALOG)
        assert all(set(r) == {"code", "severity", "summary"} for r in rows)


class TestProcessBoundary:
    def _run_lint(self, target: Path, *flags: str) -> bytes:
        env = dict(os.environ)
        env["PYTHONPATH"] = str(SRC) + (
            os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
        )
        result = subprocess.run(
            [sys.executable, "-m", "repro", "lint", str(target), *flags],
            capture_output=True,
            timeout=300,
            env=env,
        )
        assert result.returncode == 0, result.stderr.decode()
        return result.stdout

    def test_reports_identical_across_processes(self, tmp_path):
        """Two fresh interpreters must emit byte-identical reports — no
        hash-seed, dict-order, or locale dependence."""
        target = tmp_path / "prog.twr"
        target.write_text(
            "fun main(x: uint) -> uint {\n"
            "  let dead <- x + 1;\n"
            "  with { let x <- 1; } do { skip; }\n"
            "  let y <- x;\n"
            "  return y;\n"
            "}\n"
        )
        human = [self._run_lint(target) for _ in range(2)]
        assert human[0] == human[1]
        assert b"RPA102" in human[0] and b"RPA103" in human[0]
        as_json = [self._run_lint(target, "--json") for _ in range(2)]
        assert as_json[0] == as_json[1]
        json.loads(as_json[0])  # well-formed
