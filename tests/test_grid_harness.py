"""The parallel / cached grid paths are bit-identical to the serial path.

Acceptance gate for the evaluation harness: whatever backend executes a
grid point — in-process, replayed from the artifact cache, or in a worker
process — the measurement must match the recorded seed T-counts in
``tests/data/seed_tcounts.json`` exactly.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.benchsuite import (
    ArtifactCache,
    BenchmarkRunner,
    CachedBackend,
    GridTask,
    ParallelBackend,
    SerialBackend,
    measure_tasks,
    optimizer_tasks,
)
from repro.config import CompilerConfig

DATA = pathlib.Path(__file__).resolve().parent / "data" / "seed_tcounts.json"
SEED = json.loads(DATA.read_text())
CONFIG = CompilerConfig(**SEED["config"])

#: a fast slice of the seed grid (small circuits; every optimizer kind)
SAMPLE = [
    ("length", 2, "peephole"),
    ("length", 2, "rotation-merge"),
    ("length", 2, "toffoli-cancel"),
    ("length", 2, "zx-like"),
    ("length-simplified", 3, "peephole"),
    ("length-simplified", 3, "toffoli-cancel"),
    ("sum", 2, "rotation-merge"),
]

TASKS = measure_tasks("length", [2, 3]) + [
    GridTask("optimize", name, depth, "none", optimizer)
    for name, depth, optimizer in SAMPLE
]


def seed_count(name, depth, optimizer) -> int:
    return SEED["counts"][f"{name}|{depth}|{optimizer}"]


def _strip_timing(row: dict) -> dict:
    return {
        k: v
        for k, v in row.items()
        if k not in ("compile_seconds", "wall_seconds", "seconds", "cached", "timings")
    }


@pytest.fixture(scope="module")
def serial_rows():
    runner = BenchmarkRunner(CONFIG, backend=SerialBackend())
    return runner.run_grid(TASKS).rows


def test_serial_matches_seed(serial_rows):
    by_key = {
        (r["name"], r["depth"], r.get("optimizer")): r for r in serial_rows
    }
    for name, depth, optimizer in SAMPLE:
        assert by_key[(name, depth, optimizer)]["t_count"] == seed_count(
            name, depth, optimizer
        )


def test_cached_cold_and_warm_match_serial(tmp_path, serial_rows):
    cache = ArtifactCache(tmp_path)
    cold = BenchmarkRunner(CONFIG, backend=CachedBackend(cache)).run_grid(TASKS)
    assert cold.cached_fraction() == 0.0
    warm = BenchmarkRunner(CONFIG, backend=CachedBackend(cache)).run_grid(TASKS)
    assert warm.cached_fraction() == 1.0
    for reference, a, b in zip(serial_rows, cold.rows, warm.rows):
        assert _strip_timing(a) == _strip_timing(reference)
        assert _strip_timing(b) == _strip_timing(reference)
        # a replay reports the cold run's stage timings, flagged as cached
        assert b["cached"] and not a["cached"]
        if "compile_seconds" in reference:
            assert b["compile_seconds"] == a["compile_seconds"]
        if "seconds" in reference and reference.get("optimizer"):
            assert b["seconds"] == a["seconds"]


def test_parallel_matches_serial(tmp_path, serial_rows):
    backend = ParallelBackend(jobs=2, cache=ArtifactCache(tmp_path))
    parallel = BenchmarkRunner(CONFIG, backend=backend).run_grid(TASKS)
    assert len(parallel.rows) == len(serial_rows)
    for reference, row in zip(serial_rows, parallel.rows):
        assert _strip_timing(row) == _strip_timing(reference)
    for name, depth, optimizer in SAMPLE:
        assert parallel.optimized(name, depth, optimizer)["t_count"] == seed_count(
            name, depth, optimizer
        )


def test_parallel_without_cache_matches_serial(serial_rows):
    parallel = BenchmarkRunner(CONFIG, backend=ParallelBackend(jobs=2)).run_grid(
        TASKS
    )
    for reference, row in zip(serial_rows, parallel.rows):
        assert _strip_timing(row) == _strip_timing(reference)


def test_optimizer_baseline_on_rehydrated_circuit(tmp_path):
    """A cold process with a warm disk cache must reproduce seed T-counts
    from the circuit snapshot alone (no recompilation)."""
    cache = ArtifactCache(tmp_path)
    warmup = BenchmarkRunner(CONFIG, cache=cache)
    warmup.measure("length", 2)  # stores the compiled circuit snapshot
    fresh = BenchmarkRunner(CONFIG, cache=cache)
    point = fresh.optimize_point("length", 2, "peephole")
    assert not fresh._compiled  # never compiled: circuit came from disk
    assert point.t_count == seed_count("length", 2, "peephole")


def test_unsized_benchmark_normalizes_depth(tmp_path):
    runner = BenchmarkRunner(
        CONFIG, backend=CachedBackend(ArtifactCache(tmp_path))
    )
    grid = runner.run_grid(measure_tasks("pop_front", [7]))
    assert grid.measure("pop_front", None)["depth"] is None
    assert grid.measure("pop_front", 7) is grid.measure("pop_front", None)
