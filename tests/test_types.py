"""Unit tests for types and layout (repro.types)."""

import pytest

from repro.config import CompilerConfig
from repro.errors import TypeCheckError
from repro.types import (
    BOOL,
    UINT,
    BoolT,
    NamedT,
    PtrT,
    TupleT,
    TypeTable,
    UIntT,
    UnitT,
)


@pytest.fixture
def table():
    t = TypeTable(CompilerConfig(word_width=4, addr_width=3, heap_cells=5))
    t.declare("list", TupleT(UINT, PtrT(NamedT("list"))))
    return t


class TestWidths:
    def test_unit_is_zero_bits(self, table):
        assert table.width(UnitT()) == 0

    def test_bool_is_one_bit(self, table):
        assert table.width(BOOL) == 1

    def test_uint_uses_word_width(self, table):
        assert table.width(UINT) == 4

    def test_ptr_uses_addr_width(self, table):
        assert table.width(PtrT(NamedT("list"))) == 3

    def test_tuple_width_is_sum(self, table):
        assert table.width(TupleT(UINT, BOOL)) == 5

    def test_recursive_type_through_pointer(self, table):
        assert table.width(NamedT("list")) == 4 + 3

    def test_recursion_outside_pointer_rejected(self):
        t = TypeTable(CompilerConfig())
        t.declare("bad", TupleT(UINT, NamedT("bad")))
        with pytest.raises(TypeCheckError):
            t.width(NamedT("bad"))

    def test_unknown_name_rejected(self, table):
        with pytest.raises(TypeCheckError):
            table.width(NamedT("nope"))


class TestResolve:
    def test_resolve_named(self, table):
        resolved = table.resolve(NamedT("list"))
        assert isinstance(resolved, TupleT)

    def test_resolve_passthrough(self, table):
        assert table.resolve(UINT) == UINT

    def test_self_referential_alias_rejected(self):
        t = TypeTable(CompilerConfig())
        t.declare("a", NamedT("a"))
        with pytest.raises(TypeCheckError):
            t.resolve(NamedT("a"))

    def test_duplicate_declaration_rejected(self, table):
        with pytest.raises(TypeCheckError):
            table.declare("list", UINT)


class TestEquality:
    def test_named_equals_structure(self, table):
        assert table.equal(NamedT("list"), TupleT(UINT, PtrT(NamedT("list"))))

    def test_different_base_types(self, table):
        assert not table.equal(UINT, BOOL)

    def test_ptr_element_types_compared(self, table):
        assert not table.equal(PtrT(UINT), PtrT(BOOL))

    def test_recursive_equality_terminates(self, table):
        table.declare("list2", TupleT(UINT, PtrT(NamedT("list2"))))
        assert table.equal(NamedT("list"), NamedT("list2"))

    def test_tuple_layout(self, table):
        off1, off2, t1, t2 = table.tuple_layout(NamedT("list"))
        assert (off1, off2) == (0, 4)
        assert t1 == UINT


class TestConfig:
    def test_rejects_zero_word_width(self):
        with pytest.raises(ValueError):
            CompilerConfig(word_width=0)

    def test_rejects_heap_too_large_for_addr_width(self):
        with pytest.raises(ValueError):
            CompilerConfig(addr_width=2, heap_cells=4)  # 0 is null

    def test_with_cell_bits(self):
        cfg = CompilerConfig().with_cell_bits(9)
        assert cfg.cell_bits == 9
