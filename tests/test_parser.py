"""Unit tests for the Tower parser."""

import pytest

from repro.errors import ParseError
from repro.lang.ast import (
    EBin,
    EBool,
    ECall,
    EDefault,
    EInt,
    ENull,
    EPair,
    EProj,
    EUn,
    EVar,
    SHadamard,
    SIf,
    SLet,
    SMemSwap,
    SSkip,
    SSwapS,
    SWith,
)
from repro.lang.parser import parse_program, parse_stmts
from repro.types import BoolT, NamedT, PtrT, TupleT, UIntT, UnitT


class TestTypes:
    def test_typedef(self):
        prog = parse_program("type list = (uint, ptr<list>);")
        (td,) = prog.typedefs
        assert td.name == "list"
        assert td.ty == TupleT(UIntT(), PtrT(NamedT("list")))

    def test_unit_type(self):
        prog = parse_program("type u = ();")
        assert prog.typedefs[0].ty == UnitT()

    def test_nested_pointer_type(self):
        prog = parse_program("type p = ptr<ptr<bool>>;")
        assert prog.typedefs[0].ty == PtrT(PtrT(BoolT()))


class TestStatements:
    def test_let_forward(self):
        (s,) = parse_stmts("let x <- 5;")
        assert s == SLet("x", EInt(5), True)

    def test_let_backward(self):
        (s,) = parse_stmts("let x -> 5;")
        assert s == SLet("x", EInt(5), False)

    def test_swap(self):
        (s,) = parse_stmts("a <-> b;")
        assert s == SSwapS("a", "b")

    def test_memswap(self):
        (s,) = parse_stmts("*p <-> x;")
        assert s == SMemSwap("p", "x")

    def test_hadamard(self):
        (s,) = parse_stmts("H(x);")
        assert s == SHadamard("x")

    def test_skip(self):
        (s,) = parse_stmts("skip;")
        assert s == SSkip()

    def test_if_without_else(self):
        (s,) = parse_stmts("if x { let y <- 1; }")
        assert isinstance(s, SIf)
        assert s.otherwise is None

    def test_if_with_else(self):
        (s,) = parse_stmts("if x { let y <- 1; } else { let y <- 2; }")
        assert isinstance(s, SIf)
        assert s.otherwise is not None

    def test_else_with_sugar(self):
        (s,) = parse_stmts("if x { skip; } else with { let t <- 1; } do { skip; }")
        assert isinstance(s.otherwise[0], SWith)

    def test_with_do_if_sugar(self):
        (s,) = parse_stmts("with { let t <- 1; } do if c { skip; }")
        assert isinstance(s, SWith)
        assert isinstance(s.body[0], SIf)


class TestExpressions:
    def expr(self, text):
        (s,) = parse_stmts(f"let x <- {text};")
        return s.expr

    def test_precedence_mul_over_add(self):
        assert self.expr("a + b * c") == EBin("+", EVar("a"), EBin("*", EVar("b"), EVar("c")))

    def test_precedence_cmp_over_and(self):
        e = self.expr("a == b && c")
        assert e == EBin("&&", EBin("==", EVar("a"), EVar("b")), EVar("c"))

    def test_precedence_and_over_or(self):
        e = self.expr("a || b && c")
        assert e == EBin("||", EVar("a"), EBin("&&", EVar("b"), EVar("c")))

    def test_left_associative_and(self):
        e = self.expr("a && b && c")
        assert e == EBin("&&", EBin("&&", EVar("a"), EVar("b")), EVar("c"))

    def test_not_unary(self):
        assert self.expr("not a") == EUn("not", EVar("a"))

    def test_projection(self):
        assert self.expr("t.2") == EProj(EVar("t"), 2)

    def test_chained_projection(self):
        assert self.expr("t.2.1") == EProj(EProj(EVar("t"), 2), 1)

    def test_bad_projection_index(self):
        with pytest.raises(ParseError):
            self.expr("t.3")

    def test_pair(self):
        assert self.expr("(a, b)") == EPair(EVar("a"), EVar("b"))

    def test_parenthesized(self):
        assert self.expr("(a)") == EVar("a")

    def test_null_and_default(self):
        assert self.expr("null") == ENull()
        assert self.expr("default<uint>") == EDefault(UIntT())

    def test_booleans(self):
        assert self.expr("true") == EBool(True)
        assert self.expr("false") == EBool(False)

    def test_call_with_size(self):
        e = self.expr("f[n-1](a, b)")
        assert isinstance(e, ECall)
        assert e.func == "f"
        assert e.size.var == "n" and e.size.offset == 1
        assert e.args == (EVar("a"), EVar("b"))

    def test_call_constant_size(self):
        e = self.expr("f[3]()")
        assert e.size.var is None and e.size.offset == 3

    def test_call_without_size(self):
        e = self.expr("f(a)")
        assert e.size is None

    def test_comparison_with_null(self):
        e = self.expr("xs == null")
        assert e == EBin("==", EVar("xs"), ENull())


class TestFunctions:
    def test_fundef_shape(self, length_source):
        prog = parse_program(length_source)
        f = prog.fun("length")
        assert f.size_param == "n"
        assert [p[0] for p in f.params] == ["xs", "acc"]
        assert f.return_var == "out"
        assert f.return_type == UIntT()

    def test_missing_function_raises(self, length_source):
        prog = parse_program(length_source)
        with pytest.raises(KeyError):
            prog.fun("nope")

    def test_unsized_function(self):
        prog = parse_program("fun f(x: bool) -> bool { let y <- not x; return y; }")
        assert prog.fun("f").size_param is None

    def test_error_on_junk_top_level(self):
        with pytest.raises(ParseError):
            parse_program("banana")

    def test_error_missing_semicolon(self):
        with pytest.raises(ParseError):
            parse_stmts("let x <- 1")


def test_benchmark_sources_all_parse():
    from repro.benchsuite import SOURCES

    for name, src in SOURCES.items():
        prog = parse_program(src)
        assert prog.fundefs, name
