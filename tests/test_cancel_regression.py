"""Regression tests for the vectorized gate-stream backbone.

Two layers of protection for the packed rewrite of the optimizer and
simulator hot paths:

* **edge cases** — window-boundary hits in the cancellation scan, phase
  merges that materialize two gates, fixpoint termination at ``max_passes``;
* **properties** — on random Clifford+T circuits, every vectorized path
  (``cancel_pass``, ``cancel_to_fixpoint``, ``fold_phases``,
  ``gates_commute``, the statevector kernels) returns output identical to
  the frozen seed implementations kept in :mod:`repro.reference`.
"""

from __future__ import annotations

import numpy as np
import hypothesis.strategies as st
from hypothesis import given, settings

from repro import reference
from repro.circopt import cancel_pass, cancel_to_fixpoint, fold_phases
from repro.circopt.base import gates_commute
from repro.circuit import (
    Circuit,
    GateStream,
    cnot,
    h,
    s,
    sdg,
    swap,
    t,
    tdg,
    toffoli,
    x,
    z,
)
from repro.circuit.statevector import run, unitary


# ------------------------------------------------------------- edge cases
def test_window_boundary_blocks_cancellation():
    """An inverse pair further apart than the scan window must survive."""
    spacers = [x(q) for q in (1, 2, 3, 4)]  # all commute with T(0)
    gates = [t(0)] + spacers + [tdg(0)]
    # reaching T(0) from T†(0) takes 4 commuting hops, so window=4 stops
    # one short of the partner while window=5 annihilates the pair
    assert cancel_pass(gates, window=4) == gates
    assert cancel_pass(gates, window=5) == spacers
    for window in (1, 4, 5, 64):
        assert cancel_pass(gates, window) == reference.cancel_pass_seed(
            gates, window
        )


def test_phase_merge_two_gates():
    """T+S is 3 eighth-turns: the merge materializes *two* gates (S, T)."""
    merged = cancel_pass([t(0), s(0)])
    assert merged == [s(0), t(0)]
    assert merged == reference.cancel_pass_seed([t(0), s(0)])
    # ...and Z+T is 5 eighths = (Z, T)
    merged = cancel_pass([z(0), t(0)])
    assert merged == [z(0), t(0)]


def test_phase_merge_annihilates_to_identity():
    assert cancel_pass([s(0), sdg(0)]) == []
    assert cancel_pass([t(0), t(0), s(0), z(0)]) == []


def test_fixpoint_needs_multiple_passes_and_stops_at_max_passes():
    """A chain of phase merges that window=1 only resolves over two passes."""
    gates = [s(0), sdg(1), tdg(1), s(1), t(1)]
    one = cancel_pass(gates, window=1)
    two = cancel_pass(one, window=1)
    assert len(two) < len(one) < len(gates)  # each pass strictly reduces
    # max_passes=1 stops after the first sweep, before the fixpoint
    assert cancel_to_fixpoint(gates, window=1, max_passes=1) == one
    assert cancel_to_fixpoint(gates, window=1) == reference.cancel_to_fixpoint_seed(
        gates, window=1
    )


def test_fixpoint_zero_passes_is_lossless():
    """max_passes=0 must hand back the input gates unchanged (pack round-trip)."""
    gates = [t(0), h(1), toffoli(2, 0, 1), s(0), cnot(1, 0)]
    assert cancel_to_fixpoint(gates, max_passes=0) == gates


def test_gatestream_roundtrip_and_wide_masks():
    gates = [toffoli(2, 0, 1), h(3), t(0), swap(1, 3), cnot(100, 0)]
    stream = GateStream.from_gates(gates)
    assert stream.to_gates() == gates
    assert stream.num_qubits == 101  # object-dtype masks survive >64 wires
    assert stream.ctrl_masks[4] == 1 << 100
    assert stream.t_count() == 1
    # rebuilding from the arrays alone canonicalizes qubit order only
    rebuilt = stream.rebuild_gates()
    assert [g.kind for g in rebuilt] == [g.kind for g in gates]
    assert [set(g.qubits) for g in rebuilt] == [set(g.qubits) for g in gates]


# ------------------------------------------------------------- properties
def random_clifford_t(num_qubits=4):
    qubit = st.integers(0, num_qubits - 1)
    gate = st.one_of(
        qubit.map(x),
        qubit.map(h),
        qubit.map(t),
        qubit.map(tdg),
        qubit.map(s),
        qubit.map(sdg),
        qubit.map(z),
        st.permutations(range(num_qubits)).map(lambda p: cnot(p[0], p[1])),
        st.permutations(range(num_qubits)).map(lambda p: swap(p[0], p[1])),
        st.permutations(range(num_qubits)).map(lambda p: toffoli(p[0], p[1], p[2])),
    )
    return st.lists(gate, min_size=0, max_size=24).map(
        lambda gates: Circuit(num_qubits, gates)
    )


@settings(max_examples=150, deadline=None)
@given(circ=random_clifford_t(), window=st.sampled_from([1, 2, 4, 64]))
def test_cancel_pass_matches_seed(circ, window):
    assert cancel_pass(circ.gates, window) == reference.cancel_pass_seed(
        circ.gates, window
    )


@settings(max_examples=100, deadline=None)
@given(circ=random_clifford_t(), window=st.sampled_from([1, 4, 64]))
def test_cancel_to_fixpoint_matches_seed(circ, window):
    assert cancel_to_fixpoint(circ.gates, window) == reference.cancel_to_fixpoint_seed(
        circ.gates, window
    )


@settings(max_examples=150, deadline=None)
@given(circ=random_clifford_t())
def test_fold_phases_matches_seed(circ):
    assert fold_phases(circ).gates == reference.fold_phases_seed(circ).gates


@settings(max_examples=200, deadline=None)
@given(circ=random_clifford_t(num_qubits=3))
def test_gates_commute_matches_seed(circ):
    gates = circ.gates
    for a, b in zip(gates, gates[1:]):
        assert gates_commute(a, b) == reference.gates_commute_seed(a, b)


@settings(max_examples=60, deadline=None)
@given(circ=random_clifford_t(num_qubits=3))
def test_statevector_run_matches_seed(circ):
    assert np.allclose(run(circ), reference.run_seed(circ))


@settings(max_examples=30, deadline=None)
@given(circ=random_clifford_t(num_qubits=3))
def test_unitary_matches_seed(circ):
    assert np.allclose(unitary(circ), reference.unitary_seed(circ))


@settings(max_examples=60, deadline=None)
@given(circ=random_clifford_t(num_qubits=3))
def test_run_does_not_mutate_caller_state(circ):
    state = np.zeros(1 << circ.num_qubits, dtype=np.complex128)
    state[0] = 1.0
    before = state.copy()
    run(circ, state)
    assert np.array_equal(state, before)


@settings(max_examples=100, deadline=None)
@given(circ=random_clifford_t())
def test_gatestream_roundtrip_property(circ):
    stream = GateStream.from_gates(circ.gates, circ.num_qubits)
    assert stream.to_gates() == circ.gates
    assert stream.t_count() == circ.t_count()
