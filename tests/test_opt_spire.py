"""Tests for Spire's program-level optimizations (Section 6)."""

import pytest

from repro.compiler import compile_source
from repro.config import CompilerConfig
from repro.ir import (
    Assign,
    AtomE,
    BinOp,
    BoolV,
    Hadamard,
    If,
    Lit,
    Seq,
    UIntV,
    Var,
    With,
    check_program,
    run_program,
    seq,
)
from repro.opt import flatten_only, narrow_only, spire_optimize
from repro.types import BOOL, UINT, TypeTable

CFG = CompilerConfig(word_width=3, addr_width=3, heap_cells=5)


def assign(name, n=1):
    return Assign(name, AtomE(Lit(UIntV(n))))


class TestFlatteningRule:
    def test_nested_if_becomes_with_and(self):
        s = If("x", If("y", assign("z")))
        out = spire_optimize(s)
        assert isinstance(out, With)
        setup = out.setup
        assert isinstance(setup, Assign)
        assert setup.expr == BinOp("&&", Var("x"), Var("y"))
        inner = out.body
        assert isinstance(inner, If)
        assert inner.cond == setup.name

    def test_triple_nesting_flattens_completely(self):
        s = If("a", If("b", If("c", assign("z"))))
        out = spire_optimize(s)

        # after optimization no if is directly inside another if
        def max_if_depth(stmt, depth=0):
            if isinstance(stmt, If):
                depth += 1
                return max_if_depth(stmt.body, depth)
            if isinstance(stmt, Seq):
                return max(max_if_depth(sub, depth) for sub in stmt.stmts)
            if isinstance(stmt, With):
                return max(
                    max_if_depth(stmt.setup, depth), max_if_depth(stmt.body, depth)
                )
            return depth

        assert max_if_depth(out) == 1

    def test_if_distributes_over_seq(self):
        s = If("x", seq(assign("a"), assign("b")))
        out = spire_optimize(s)
        assert isinstance(out, Seq)
        assert all(isinstance(sub, If) for sub in out.stmts)

    def test_fresh_names_avoid_collisions(self):
        s = seq(
            Assign("%cf1", AtomE(Lit(BoolV(True)))),
            If("x", If("y", assign("z"))),
        )
        out = spire_optimize(s)
        names = [node.name for node in out.walk() if isinstance(node, Assign)]
        assert len(names) == len(set(names))


class TestNarrowingRule:
    def test_with_moves_out_of_if(self):
        s = If("x", With(assign("t"), assign("z")))
        out = narrow_only(s)
        assert isinstance(out, With)
        assert out.setup == assign("t")  # unconditionally executed
        assert isinstance(out.body, If)

    def test_narrow_alone_keeps_nested_ifs(self):
        s = If("x", If("y", assign("z")))
        out = narrow_only(s)
        assert isinstance(out, If)
        assert isinstance(out.body, If)


class TestFlattenOnly:
    def test_with_under_if_keeps_controls(self):
        s = If("x", With(assign("t"), If("y", assign("z"))))
        out = flatten_only(s)
        # the with's setup must still be guarded by x (no narrowing)
        assert isinstance(out, With)
        assert isinstance(out.setup, If) and out.setup.cond == "x"


class TestSemanticPreservation:
    """Theorems 6.3 and 6.5, checked by interpretation."""

    def make_table(self):
        table = TypeTable(CFG)
        return table

    @pytest.mark.parametrize("optimize", [spire_optimize, flatten_only, narrow_only])
    @pytest.mark.parametrize("bits", range(8))
    def test_figure3_program(self, optimize, bits):
        # the paper's Figure 3: nested ifs over x, y, z
        x, y, z = bits & 1, (bits >> 1) & 1, (bits >> 2) & 1
        body = If(
            "x",
            If(
                "y",
                With(
                    Assign("t", AtomE(Var("z"))),
                    If(
                        "z",
                        seq(
                            Assign("a", BinOp("!=", Var("t"), Lit(BoolV(True)))),
                            Assign("b", AtomE(Lit(BoolV(True)))),
                        ),
                    ),
                ),
            ),
        )
        table = self.make_table()
        inputs = {"x": x, "y": y, "z": z}
        input_types = {"x": BOOL, "y": BOOL, "z": BOOL}
        check_program(body, table, input_types)
        optimized = optimize(body)
        check_program(optimized, table, input_types, relaxed=True)
        m1 = run_program(body, table, dict(inputs), dict(input_types))
        m2 = run_program(optimized, table, dict(inputs), dict(input_types))
        shared = {"x", "y", "z", "a", "b"}
        for name in shared:
            assert m1.registers.get(name, 0) == m2.registers.get(name, 0), name
        # every temporary of the optimized program is restored to zero
        for name, value in m2.registers.items():
            if name not in shared:
                assert value == 0, name

    @pytest.mark.parametrize("optimization", ["spire", "flatten", "narrow"])
    def test_length_circuit_equivalence(self, length_source, optimization):
        from repro.benchsuite import HeapImage
        from repro.circuit import classical_sim

        heap = HeapImage(CFG)
        head = heap.add_list([1, 2])
        baseline = None
        for opt in ("none", optimization):
            cp = compile_source(length_source, "length", size=4, config=CFG, optimization=opt)
            inputs = {"xs": head, "acc": 0}
            inputs.update(heap.as_registers())
            out = classical_sim.run_on_registers(cp.circuit, inputs)
            value = out[cp.return_var]
            baseline = value if baseline is None else baseline
            assert value == baseline == 2


class TestCostEffect:
    """Theorem 6.1: flattening turns O(kn) into O(k+n)."""

    def test_flattening_reduces_deep_nesting_cost(self):
        body = assign("z", 7)
        nested = body
        for name in ("a", "b", "c", "d", "e"):
            nested = If(name, nested)
        from repro.cost import ExactCostModel

        table = TypeTable(CFG)
        var_types = {n: BOOL for n in "abcde"}
        var_types.update({"z": UINT})
        optimized = spire_optimize(nested)
        from repro.ir import infer_types

        var_types2 = infer_types(optimized, table, dict(var_types))
        before = ExactCostModel(table, var_types).t_complexity(nested)
        after = ExactCostModel(table, var_types2).t_complexity(optimized)
        assert after < before

    def test_hadamard_under_if_is_preserved(self):
        s = If("x", Hadamard("h"))
        out = spire_optimize(s)
        assert out == If("x", Hadamard("h"))
