"""Binary GateStream snapshots: lossless round-trip and cache invalidation.

The artifact cache persists compiled circuits through
:mod:`repro.circuit.snapshot`; optimizer baselines replayed from disk must
see *exactly* the circuit the compiler produced — gate order, control
order, registers — because the Figure 5 MCX expansion is sensitive to
control order and the evaluation requires bit-identical T-counts.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchsuite import BenchmarkRunner
from repro.benchsuite.cache import ArtifactCache, task_key
from repro.circuit import Circuit, Gate, GateKind, Register
from repro.circuit.snapshot import SnapshotError, dump, dump_bytes, load, load_bytes
from repro.config import CompilerConfig

CFG = CompilerConfig(word_width=2, addr_width=2, heap_cells=3)


# --------------------------------------------------------------- strategies
@st.composite
def clifford_t_gates(draw, num_qubits: int):
    kind = draw(
        st.sampled_from(
            [GateKind.H, GateKind.T, GateKind.TDG, GateKind.S, GateKind.SDG,
             GateKind.Z, GateKind.MCX]
        )
    )
    target = draw(st.integers(0, num_qubits - 1))
    if kind is GateKind.MCX and draw(st.booleans()):
        control = draw(
            st.integers(0, num_qubits - 1).filter(lambda q: q != target)
        )
        return Gate(kind, (control,), (target,))
    return Gate(kind, (), (target,))


@st.composite
def mcx_gates(draw, num_qubits: int):
    """MCX gates with up to 4 controls in *arbitrary* (unsorted) order."""
    qubits = draw(
        st.lists(
            st.integers(0, num_qubits - 1),
            min_size=1,
            max_size=5,
            unique=True,
        )
    )
    permuted = draw(st.permutations(qubits))
    if draw(st.booleans()):
        return Gate(GateKind.MCX, tuple(permuted[:-1]), (permuted[-1],))
    if len(permuted) >= 3 and draw(st.booleans()):
        return Gate(GateKind.SWAP, tuple(permuted[:-2]), tuple(permuted[-2:]))
    return Gate(GateKind.H, tuple(permuted[:-1]), (permuted[-1],))


def _roundtrip(circuit: Circuit) -> None:
    restored = load_bytes(dump_bytes(circuit))
    assert restored.num_qubits == circuit.num_qubits
    assert len(restored.gates) == len(circuit.gates)
    for got, expected in zip(restored.gates, circuit.gates):
        # gate-for-gate: kind, control order, target order all preserved
        assert got == expected
    assert restored.registers == circuit.registers
    assert restored == circuit


class TestRoundTrip:
    @given(st.lists(clifford_t_gates(num_qubits=9), max_size=60))
    @settings(max_examples=60, deadline=None)
    def test_random_clifford_t(self, gates):
        _roundtrip(Circuit(9, gates))

    @given(st.lists(mcx_gates(num_qubits=70), max_size=40))
    @settings(max_examples=60, deadline=None)
    def test_random_mcx_unsorted_controls(self, gates):
        # 70 wires: masks exceed 64 bits, exercising the bigint path
        _roundtrip(Circuit(70, gates))

    def test_empty_circuit(self):
        _roundtrip(Circuit(0, []))

    def test_registers_preserved(self):
        circuit = Circuit(6, [Gate(GateKind.MCX, (2, 0), (4,))])
        circuit.add_register(Register("acc", 0, 3))
        circuit.add_register(Register("mem[1]", 3, 3))
        _roundtrip(circuit)

    def test_compiled_benchmark_roundtrip(self):
        runner = BenchmarkRunner(CFG)
        for optimization in ("none", "spire"):
            compiled = runner.compile("length", 3, optimization)
            _roundtrip(compiled.circuit)
            restored = load_bytes(dump_bytes(compiled.circuit))
            assert restored.t_complexity() == compiled.t_complexity()

    def test_file_roundtrip(self, tmp_path):
        circuit = Circuit(3, [Gate(GateKind.MCX, (0, 2), (1,))])
        path = dump(circuit, tmp_path / "c.rqcs")
        assert load(path) == circuit

    def test_bad_magic_rejected(self):
        with pytest.raises(SnapshotError):
            load_bytes(b"not a snapshot at all")

    def test_truncated_rejected(self):
        blob = dump_bytes(Circuit(3, [Gate(GateKind.MCX, (0,), (1,))]))
        with pytest.raises(SnapshotError):
            load_bytes(blob[:-2])

    def test_every_corruption_shape_is_snapshot_error(self):
        import json as json_mod
        import struct as struct_mod

        blob = dump_bytes(Circuit(3, [Gate(GateKind.MCX, (0,), (1,))]))
        magic_len = 6
        (header_len,) = struct_mod.unpack_from("<I", blob, magic_len)
        corrupt = [
            blob[: magic_len + 2],  # truncated inside the header length
            # valid JSON header missing required keys
            blob[:magic_len] + struct_mod.pack("<I", 2) + b"{}"
            + blob[magic_len + 4 + header_len:],
            # invalid kind code in the kinds array
            blob[: magic_len + 4 + header_len] + b"\xc8"
            + blob[magic_len + 4 + header_len + 1:],
        ]
        for bad in corrupt:
            with pytest.raises(SnapshotError):
                load_bytes(bad)


class TestCacheInvalidation:
    """Changed source/config/version/optimizer → a different key (a miss)."""

    BASE = dict(
        source="fun f[n]() -> uint { let out <- 0; return out; }",
        entry="f",
        config=CFG,
        depth=3,
        optimization="none",
    )

    def test_key_is_deterministic(self):
        assert task_key(**self.BASE) == task_key(**self.BASE)

    def test_source_change_misses(self):
        changed = dict(self.BASE, source=self.BASE["source"] + " ")
        assert task_key(**self.BASE) != task_key(**changed)

    def test_config_change_misses(self):
        changed = dict(self.BASE, config=CompilerConfig(3, 2, 3))
        assert task_key(**self.BASE) != task_key(**changed)

    def test_version_change_misses(self):
        assert task_key(**self.BASE) != task_key(**self.BASE, version="0.0.0-test")

    def test_code_fingerprint_change_misses(self):
        # editing the compiler/optimizer source must invalidate, not just
        # a version bump (the version never moves during development)
        assert task_key(**self.BASE) != task_key(**self.BASE, code="0" * 64)

    def test_code_fingerprint_is_deterministic(self):
        from repro.benchsuite.cache import code_fingerprint

        first = code_fingerprint()
        assert first == code_fingerprint()
        assert len(first) == 64

    def test_depth_optimization_optimizer_params_all_keyed(self):
        keys = {
            task_key(**self.BASE),
            task_key(**dict(self.BASE, depth=4)),
            task_key(**dict(self.BASE, optimization="spire")),
            task_key(**self.BASE, optimizer="peephole"),
            task_key(**self.BASE, optimizer="greedy-search"),
            task_key(
                **self.BASE, optimizer="greedy-search",
                params={"preprocess_only": True},
            ),
        }
        assert len(keys) == 6

    def test_store_and_replay(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key(**self.BASE)
        assert cache.load_point(key) is None
        cache.store_point(key, {"t": 42, "cached": False})
        assert cache.load_point(key)["t"] == 42
        assert len(cache) == 1
        circuit = Circuit(3, [Gate(GateKind.MCX, (0, 2), (1,))])
        cache.store_circuit(key, circuit)
        assert cache.load_circuit(key) == circuit
        assert cache.clear() == 1
        assert cache.load_point(key) is None

    def test_version_bump_invalidates_store(self, tmp_path):
        old = ArtifactCache(tmp_path, version="1.0.0-test")
        new = ArtifactCache(tmp_path, version="2.0.0-test")
        old.store_point(old.key(**self.BASE), {"t": 1})
        assert new.load_point(new.key(**self.BASE)) is None

    def test_corrupt_circuit_blob_is_a_miss(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        key = cache.key(**self.BASE)
        circuit = Circuit(3, [Gate(GateKind.MCX, (0,), (1,))])
        cache.store_circuit(key, circuit)
        path = cache._entry_dir(key) / "circuit.rqcs"
        path.write_bytes(path.read_bytes()[:-3])
        assert cache.load_circuit(key) is None
