"""Unit tests for the core IR (values, statements, helpers)."""

import pytest

from repro.config import CompilerConfig
from repro.errors import TypeCheckError
from repro.ir import (
    Assign,
    AtomE,
    BinOp,
    BoolV,
    Hadamard,
    If,
    Lit,
    MemSwap,
    Pair,
    Proj,
    PtrV,
    Seq,
    Skip,
    Swap,
    TupleV,
    UIntV,
    UnAssign,
    UnitV,
    UnOp,
    Var,
    encode_value,
    free_vars,
    mod_set,
    seq,
    seq_list,
    zero_value,
)
from repro.types import BOOL, UINT, NamedT, PtrT, TupleT, TypeTable


@pytest.fixture
def table():
    t = TypeTable(CompilerConfig(word_width=4, addr_width=3, heap_cells=5))
    t.declare("list", TupleT(UINT, PtrT(NamedT("list"))))
    return t


class TestValues:
    def test_uint_encoding(self, table):
        assert encode_value(UIntV(9), table) == 9

    def test_uint_too_wide_rejected(self, table):
        with pytest.raises(TypeCheckError):
            encode_value(UIntV(16), table)

    def test_negative_uint_rejected(self):
        with pytest.raises(TypeCheckError):
            UIntV(-1)

    def test_bool_encoding(self, table):
        assert encode_value(BoolV(True), table) == 1
        assert encode_value(BoolV(False), table) == 0

    def test_null_encoding(self, table):
        assert encode_value(PtrV(0, UINT), table) == 0

    def test_tuple_encoding_low_bits_first(self, table):
        value = TupleV(UIntV(5), PtrV(3, NamedT("list")))
        assert encode_value(value, table) == 5 | (3 << 4)

    def test_unit_encoding(self, table):
        assert encode_value(UnitV(), table) == 0

    def test_zero_value_of_named_type(self, table):
        zero = zero_value(NamedT("list"), table)
        assert encode_value(zero, table) == 0

    def test_types_of_values(self):
        assert UIntV(1).type_of() == UINT
        assert BoolV(True).type_of() == BOOL
        assert PtrV(2, UINT).type_of() == PtrT(UINT)


class TestSeqHelpers:
    def test_seq_flattens(self):
        s = seq(Skip(), seq(Hadamard("a"), Hadamard("b")), Skip())
        assert isinstance(s, Seq)
        assert len(s.stmts) == 2

    def test_seq_of_nothing_is_skip(self):
        assert seq() == Skip()
        assert seq(Skip(), Skip()) == Skip()

    def test_seq_single_collapses(self):
        assert seq(Hadamard("a")) == Hadamard("a")

    def test_seq_list_views(self):
        assert seq_list(Skip()) == ()
        assert seq_list(Hadamard("a")) == (Hadamard("a"),)
        assert len(seq_list(seq(Hadamard("a"), Hadamard("b")))) == 2


class TestModSet:
    def test_assign(self):
        assert mod_set(Assign("x", AtomE(Lit(UIntV(1))))) == {"x"}

    def test_unassign(self):
        assert mod_set(UnAssign("x", AtomE(Var("y")))) == {"x"}

    def test_swap_modifies_both(self):
        assert mod_set(Swap("a", "b")) == {"a", "b"}

    def test_memswap_modifies_value_only(self):
        assert mod_set(MemSwap("p", "v")) == {"v"}

    def test_if_transparent(self):
        assert mod_set(If("c", Hadamard("x"))) == {"x"}

    def test_with_unions(self):
        from repro.ir import With

        s = With(Assign("a", AtomE(Lit(UIntV(0)))), Hadamard("b"))
        assert mod_set(s) == {"a", "b"}


class TestFreeVars:
    def test_collects_operands_and_targets(self):
        s = Assign("x", BinOp("+", Var("y"), Var("z")))
        assert free_vars(s) == {"x", "y", "z"}

    def test_if_condition_included(self):
        assert "c" in free_vars(If("c", Skip()))

    def test_literals_contribute_nothing(self):
        assert free_vars(Assign("x", AtomE(Lit(UIntV(3))))) == {"x"}


class TestValidation:
    def test_bad_unop_rejected(self):
        with pytest.raises(TypeCheckError):
            UnOp("neg", Var("x"))

    def test_bad_binop_rejected(self):
        with pytest.raises(TypeCheckError):
            BinOp("^", Var("x"), Var("y"))

    def test_bad_projection_index(self):
        with pytest.raises(TypeCheckError):
            Proj(3, Var("x"))

    def test_walk_traverses_nested(self):
        s = If("c", seq(Skip(), If("d", Hadamard("x"))))
        kinds = [type(node).__name__ for node in s.walk()]
        assert "Hadamard" in kinds and kinds.count("If") == 2


class TestPretty:
    def test_roundtrip_readable(self):
        from repro.ir import pretty

        s = If("c", seq(Assign("x", AtomE(Lit(UIntV(1)))), Hadamard("b")))
        text = pretty(s)
        assert "if c" in text and "let x <- 1;" in text and "H(b);" in text
