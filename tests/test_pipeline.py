"""End-to-end compilation pipeline tests, incl. IR-vs-circuit differential."""

import pytest

from repro.benchsuite import HeapImage
from repro.circuit import classical_sim
from repro.compiler import compile_source
from repro.config import CompilerConfig
from repro.errors import LoweringError
from repro.ir import run_program
from repro.lang import lower_source

CFG = CompilerConfig(word_width=3, addr_width=3, heap_cells=5)


class TestBasicCompilation:
    def test_simple_program(self):
        cp = compile_source(
            "fun main(x: uint) -> uint { let y <- x + 1; return y; }", "main", config=CFG
        )
        out = classical_sim.run_on_registers(cp.circuit, {"x": 4})
        assert out["y"] == 5

    def test_registers_exposed(self):
        cp = compile_source(
            "fun main(x: uint) -> uint { let y <- x + 1; return y; }", "main", config=CFG
        )
        assert "x" in cp.circuit.registers
        assert cp.return_var == "y"
        assert cp.register("x").width == 3

    def test_memory_registers_exposed(self, length_source):
        cp = compile_source(length_source, "length", size=2, config=CFG)
        assert "mem[1]" in cp.circuit.registers
        assert cp.cell_bits == 6  # (uint 3, ptr 3)

    def test_no_memory_program_has_no_heap(self):
        cp = compile_source(
            "fun main(x: uint) -> uint { let y <- x + 1; return y; }", "main", config=CFG
        )
        assert cp.cell_bits == 0
        assert "mem[1]" not in cp.circuit.registers

    def test_explicit_cell_bits_too_small_rejected(self, length_source):
        cfg = CompilerConfig(word_width=3, addr_width=3, heap_cells=5, cell_bits=4)
        with pytest.raises(LoweringError):
            compile_source(length_source, "length", size=2, config=cfg)

    def test_timings_recorded(self, length_source):
        cp = compile_source(length_source, "length", size=2, config=CFG)
        assert set(cp.timings) == {"optimize", "typecheck", "lower_ir", "lower_gates"}


class TestDifferential:
    """The compiled circuit and the IR interpreter must agree exactly."""

    @pytest.mark.parametrize("depth", [1, 2, 3, 4])
    @pytest.mark.parametrize("optimization", ["none", "spire", "flatten", "narrow"])
    def test_length_all_modes_all_depths(self, length_source, depth, optimization):
        low = lower_source(length_source, "length", size=depth, config=CFG)
        cp = compile_source(
            length_source, "length", size=depth, config=CFG, optimization=optimization
        )
        heap = HeapImage(CFG)
        head = heap.add_list([7, 5, 3])
        inputs = {"xs": head, "acc": 0}
        machine = run_program(
            low.stmt, low.table, inputs=inputs, input_types=low.param_types,
            memory=heap.as_memory(),
        )
        circuit_inputs = dict(inputs)
        circuit_inputs.update(heap.as_registers())
        out = classical_sim.run_on_registers(cp.circuit, circuit_inputs)
        assert out[cp.return_var] == machine.registers[low.return_var]
        # all non-input non-output registers restored to zero
        for name, value in out.items():
            if name in circuit_inputs or name == cp.return_var:
                continue
            if name.startswith("mem["):
                continue
            assert value == 0, (name, value)
        # memory restored
        for addr, cell in heap.cells.items():
            assert out[f"mem[{addr}]"] == cell

    def test_optimized_matches_unoptimized_on_all_list_shapes(self, length_source):
        for values in ([], [1], [1, 2], [3, 1, 4]):
            heap = HeapImage(CFG)
            head = heap.add_list(values)
            inputs = {"xs": head, "acc": 0}
            results = []
            for optimization in ("none", "spire"):
                cp = compile_source(
                    length_source, "length", size=5, config=CFG, optimization=optimization
                )
                circuit_inputs = dict(inputs)
                circuit_inputs.update(heap.as_registers())
                out = classical_sim.run_on_registers(cp.circuit, circuit_inputs)
                results.append(out[cp.return_var])
            assert results[0] == results[1] == len(values)


class TestQubitCounts:
    def test_spire_qubit_overhead_is_small(self, length_source):
        # Appendix F: conditional flattening adds O(1) qubits per if level
        plain = compile_source(length_source, "length", size=4, config=CFG)
        spire = compile_source(
            length_source, "length", size=4, config=CFG, optimization="spire"
        )
        assert abs(spire.num_qubits() - plain.num_qubits()) <= 8

    def test_memory_occupies_low_qubits(self, length_source):
        cp = compile_source(length_source, "length", size=2, config=CFG)
        assert cp.register("mem[1]").offset == 0
        assert cp.register("xs").offset >= CFG.heap_cells * cp.cell_bits
