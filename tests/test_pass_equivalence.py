"""Per-pass equivalence: registered passes vs. the monolithic optimizers.

Satellite of the pass-manager refactor:

* ``flatten`` and ``narrow`` as individual registered passes, composed in
  a pipeline, must reproduce the monolithic ``OPTIMIZATIONS["spire"]``
  **bit-identically** — same core IR, same exact-model T-counts — across
  every Table-1 benchmark and 50 fuzz-generated programs.  (The pass
  manager fuses adjacent spire-family passes into one Figure-22
  traversal, because sequential tree walks are *not* equivalent to the
  paper's combined pass; this suite is what pins that fusion down.)
* every recorded (benchmark, depth, optimizer) seed T-count triple must
  reproduce through the pass manager's pipeline path
  (``none+<optimizer>`` and the preset × optimizer products).
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.benchsuite import BenchmarkRunner, SOURCES, get_entry, get_source, is_unsized
from repro.compiler import compile_source, infer_cell_bits
from repro.config import CompilerConfig
from repro.cost.exact import exact_counts
from repro.fuzz.generator import GenConfig, generate_workload, program_seed
from repro.ir.typecheck import infer_types
from repro.lang.desugar import lower_entry
from repro.lang.parser import parse_program
from repro.opt.spire import OPTIMIZATIONS

CFG = CompilerConfig(word_width=3, addr_width=3, heap_cells=6)

DATA = pathlib.Path(__file__).resolve().parent / "data" / "seed_tcounts.json"
SEED = json.loads(DATA.read_text())

#: (pipeline spec, monolithic optimizer) pairs that must agree exactly
PIPELINE_VS_MONOLITHIC = [
    ("flatten,narrow,alloc,lower", "spire"),
    ("flatten,alloc,lower", "flatten"),
    ("narrow,alloc,lower", "narrow"),
    ("alloc,lower", "none"),
]


def _exact_t(stmt, table, param_types):
    """Exact-model T-count of a core statement (no circuit expansion)."""
    var_types = infer_types(stmt, table, param_types)
    cell_bits = infer_cell_bits(stmt, table, var_types)
    return exact_counts(stmt, table, var_types, cell_bits)[1]


class TestTable1Equivalence:
    @pytest.mark.parametrize("name", sorted(SOURCES))
    @pytest.mark.parametrize("spec,mono", PIPELINE_VS_MONOLITHIC)
    def test_pipeline_matches_monolithic(self, name, spec, mono):
        program = parse_program(get_source(name))
        size = None if is_unsized(name) else 3
        lowered = lower_entry(program, get_entry(name), size, CFG)
        reference = OPTIMIZATIONS[mono](lowered.stmt)
        compiled = compile_source(
            get_source(name), get_entry(name), size, CFG, spec
        )
        assert compiled.core == reference, f"{name}: IR differs for {spec}"
        assert compiled.t_complexity() == _exact_t(
            reference, lowered.table, lowered.param_types
        ), f"{name}: T-count differs for {spec}"


class TestFuzzSeedEquivalence:
    SEEDS = [program_seed(7, index) for index in range(50)]

    @pytest.mark.parametrize("seed", SEEDS)
    def test_fused_passes_match_monolithic_spire(self, seed):
        gen = GenConfig()
        workload = generate_workload(seed, gen)
        lowered = lower_entry(workload.program, "main", None, None)
        for spec, mono in PIPELINE_VS_MONOLITHIC:
            reference = OPTIMIZATIONS[mono](lowered.stmt)
            compiled = compile_source(
                # compile through the real front end so the pipeline sees
                # exactly what the monolithic path saw
                _render(workload), "main", None, lowered.table.config, spec
            )
            assert compiled.core == reference, (seed, spec)
            assert compiled.t_complexity() == _exact_t(
                reference, lowered.table, lowered.param_types
            ), (seed, spec)


def _render(workload):
    from repro.fuzz.generator import render_program

    return render_program(workload.program)


SLOW_THRESHOLD = 20000
_FAST_TRIPLES = sorted(
    key for key, count in SEED["counts"].items() if count <= 4000
)


class TestSeedTcountsThroughPassManager:
    """Preset × optimizer products reproduce the recorded seed T-counts."""

    _RUNNER = None

    @classmethod
    def runner(cls) -> BenchmarkRunner:
        if cls._RUNNER is None:
            cls._RUNNER = BenchmarkRunner(CompilerConfig(**SEED["config"]))
        return cls._RUNNER

    @pytest.mark.parametrize("key", _FAST_TRIPLES)
    def test_pipeline_measure_matches_seed(self, key):
        name, depth, optimizer = key.split("|")
        depth_val = None if depth == "None" else int(depth)
        suffix = (
            "greedy-search(preprocess_only=true)"
            if optimizer == "greedy-search"
            else optimizer
        )
        point = self.runner().measure(name, depth_val, f"none+{suffix}")
        assert point.t == SEED["counts"][key], key

    @pytest.mark.parametrize("optimization", ["spire", "flatten", "narrow"])
    @pytest.mark.parametrize(
        "optimizer",
        ["peephole", "rotation-merge", "toffoli-cancel", "zx-like"],
    )
    def test_preset_product_matches_direct_path(self, optimization, optimizer):
        runner = self.runner()
        point = runner.measure("length", 2, f"{optimization}+{optimizer}")
        baseline = runner.optimize_point("length", 2, optimizer, optimization)
        assert point.t == baseline.t_count
