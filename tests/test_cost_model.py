"""Cost-model tests: exact soundness (Theorems 5.1/5.2) and the paper model."""

import pytest

from repro.compiler import compile_source
from repro.config import CompilerConfig
from repro.cost import (
    C_T_CTRL,
    ControlProfile,
    ExactCostModel,
    PaperCostModel,
    exact_counts,
    fit_report,
    t_mcx,
)
from repro.ir import Assign, AtomE, BinOp, BoolV, Hadamard, If, Lit, UIntV, Var, seq

CFG = CompilerConfig(word_width=3, addr_width=3, heap_cells=5)


class TestControlProfile:
    def test_shift_models_if(self):
        profile = ControlProfile()
        profile.mcx[1] = 4
        shifted = profile.shifted(1)
        assert shifted.mcx == {2: 4}

    def test_t_complexity_uses_figure_5_6(self):
        profile = ControlProfile()
        profile.mcx[3] = 2
        assert profile.t_complexity() == 2 * t_mcx(3) == 2 * 21

    def test_addition_and_scaling(self):
        a = ControlProfile()
        a.mcx[1] = 1
        b = ControlProfile()
        b.mcx[1] = 2
        b.h[0] = 1
        total = a + b.scaled(3)
        assert total.mcx == {1: 7}
        assert total.h == {0: 3}
        assert total.mcx_complexity() == 10


class TestExactSoundness:
    """exact model == compiled circuit, as equalities (Theorems 5.1/5.2)."""

    @pytest.mark.parametrize("optimization", ["none", "spire", "flatten", "narrow"])
    @pytest.mark.parametrize("depth", [2, 3])
    def test_length(self, length_source, optimization, depth):
        cp = compile_source(
            length_source, "length", size=depth, config=CFG, optimization=optimization
        )
        mcx, t = exact_counts(cp.core, cp.table, cp.var_types, cp.cell_bits)
        assert mcx == cp.mcx_complexity()
        assert t == cp.t_complexity()

    def test_hadamard_program(self):
        src = """
        fun main(c: bool, x: bool) -> bool {
          if c { H(x); }
          let y <- x;
          return y;
        }
        """
        cp = compile_source(src, "main", config=CFG)
        mcx, t = exact_counts(cp.core, cp.table, cp.var_types, cp.cell_bits)
        assert mcx == cp.mcx_complexity()
        assert t == cp.t_complexity()

    def test_deeply_nested_ifs(self):
        src = """
        fun main(a: bool, b: bool, c: bool, x: uint, y: uint) -> uint {
          if a { if b { if c { let z <- x * y; } } }
          return z;
        }
        """
        cp = compile_source(src, "main", config=CFG)
        mcx, t = exact_counts(cp.core, cp.table, cp.var_types, cp.cell_bits)
        assert (mcx, t) == (cp.mcx_complexity(), cp.t_complexity())


class TestPaperModelEquations:
    """The Section 5 equations on hand-built IR."""

    def model(self):
        from repro.types import TypeTable, BOOL, UINT

        table = TypeTable(CFG)
        var_types = {"x": BOOL, "y": BOOL, "a": UINT, "b": UINT, "z": UINT, "w": BOOL}
        return PaperCostModel(table, var_types), table

    def test_if_over_constant_assignment_is_free(self):
        model, _ = self.model()
        s = If("x", Assign("z", AtomE(Lit(UIntV(7)))))
        assert model.c_t(s) == 0

    def test_double_if_over_constant_assignment_costs(self):
        model, _ = self.model()
        inner = Assign("z", AtomE(Lit(UIntV(7))))
        s = If("x", If("y", inner))
        c_mcx = model.c_mcx(inner)
        assert model.c_t(s) == C_T_CTRL * c_mcx

    def test_controlled_hadamard_constant(self):
        model, _ = self.model()
        assert model.c_t(If("x", Hadamard("w"))) == model.c_t_ch
        assert model.c_t(Hadamard("w")) == 0

    def test_if_distributes_over_seq(self):
        model, _ = self.model()
        s1 = Assign("z", BinOp("+", Var("a"), Var("b")))
        s2 = Assign("z", BinOp("*", Var("a"), Var("b")))
        combined = model.c_t(If("x", seq(s1, s2)))
        assert combined == model.c_t(If("x", s1)) + model.c_t(If("x", s2))

    def test_control_cost_rule(self):
        model, _ = self.model()
        s = Assign("z", BinOp("+", Var("a"), Var("b")))
        assert model.c_t(If("x", s)) == C_T_CTRL * model.c_mcx(s) + model.c_t(s)

    def test_mcx_complexity_if_transparent(self):
        model, _ = self.model()
        s = Assign("z", BinOp("+", Var("a"), Var("b")))
        assert model.c_mcx(If("x", s)) == model.c_mcx(s)


class TestAsymptoticPrediction:
    """RQ1: predicted and empirical degrees agree (Section 8.1 method)."""

    def test_length_t_degree_before_and_after(self, length_source):
        depths = [2, 3, 4, 5, 6]
        emp_none, emp_spire, pred_none, pred_spire = [], [], [], []
        for d in depths:
            for opt, emp, pred in (
                ("none", emp_none, pred_none),
                ("spire", emp_spire, pred_spire),
            ):
                cp = compile_source(length_source, "length", size=d, config=CFG, optimization=opt)
                emp.append(cp.t_complexity())
                model = PaperCostModel(cp.table, cp.var_types, cp.cell_bits)
                pred.append(model.c_t(cp.core))
        assert fit_report(depths, emp_none).degree == 2
        assert fit_report(depths, pred_none).degree == 2
        assert fit_report(depths, emp_spire).degree == 1
        assert fit_report(depths, pred_spire).degree == 1

    def test_length_mcx_is_linear(self, length_source):
        depths = [2, 3, 4, 5]
        mcx = []
        for d in depths:
            cp = compile_source(length_source, "length", size=d, config=CFG)
            mcx.append(cp.mcx_complexity())
        assert fit_report(depths, mcx).degree == 1
