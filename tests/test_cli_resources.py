"""Tests for the CLI and the resource estimator."""

import pytest

from repro.cli import main
from repro.compiler import compile_source
from repro.config import CompilerConfig
from repro.cost.resources import estimate_resources, schedule_depth
from repro.circuit import Circuit, cnot, h, t, tdg, toffoli

CFG = CompilerConfig(word_width=3, addr_width=3, heap_cells=5)


@pytest.fixture
def source_file(tmp_path, length_source):
    path = tmp_path / "length.twr"
    path.write_text(length_source)
    return str(path)


COMMON = ["--entry", "length", "--size", "3", "--word-width", "3",
          "--addr-width", "3", "--heap-cells", "5"]


class TestCli:
    def test_compile(self, source_file, capsys):
        assert main(["compile", source_file, *COMMON]) == 0
        out = capsys.readouterr().out
        assert "T-complexity" in out and "MCX-complexity" in out

    def test_compile_with_spire_and_emit(self, source_file, capsys, tmp_path):
        emitted = tmp_path / "out.qc"
        code = main(["compile", source_file, *COMMON,
                     "--optimize", "spire", "--emit", str(emitted)])
        assert code == 0
        text = emitted.read_text()
        assert text.startswith(".v ")
        from repro.circuit import qc_format

        parsed = qc_format.loads(text)
        assert len(parsed.gates) > 0

    def test_analyze(self, source_file, capsys):
        assert main(["analyze", source_file, *COMMON]) == 0
        out = capsys.readouterr().out
        assert "C_MCX" in out and "C_T" in out

    def test_resources(self, source_file, capsys):
        assert main(["resources", source_file, *COMMON]) == 0
        out = capsys.readouterr().out
        assert "T-depth" in out and "area-latency" in out

    def test_optimizers(self, source_file, capsys):
        assert main(["optimizers", source_file, *COMMON, "--timeout", "0.1"]) == 0
        out = capsys.readouterr().out
        assert "toffoli-cancel" in out and "zx-like" in out

    def test_missing_file_is_an_error(self, capsys):
        assert main(["compile", "/nope/missing.twr", *COMMON]) == 1

    def test_bad_program_is_an_error(self, tmp_path, capsys):
        path = tmp_path / "bad.twr"
        path.write_text("fun f() -> uint { let x <- y; return x; }")
        assert main(["compile", str(path), "--entry", "f"]) == 1


class TestScheduleDepth:
    def test_empty(self):
        assert schedule_depth(Circuit(1, [])) == (0, 0)

    def test_serial_chain(self):
        circ = Circuit(1, [t(0), t(0), t(0)])
        assert schedule_depth(circ) == (3, 3)

    def test_parallel_gates_share_a_layer(self):
        circ = Circuit(2, [t(0), t(1)])
        assert schedule_depth(circ) == (1, 1)

    def test_clifford_layers_not_counted_in_t_depth(self):
        circ = Circuit(2, [h(0), cnot(0, 1), t(1)])
        total, t_depth = schedule_depth(circ)
        assert total == 3
        assert t_depth == 1

    def test_dependency_through_shared_qubit(self):
        circ = Circuit(3, [cnot(0, 1), cnot(1, 2)])
        assert schedule_depth(circ)[0] == 2


class TestResourceReport:
    def test_length_report(self, length_source):
        compiled = compile_source(length_source, "length", size=3, config=CFG)
        report = estimate_resources(compiled)
        assert report.t_count == compiled.t_complexity()
        assert 0 < report.t_depth <= report.total_depth
        assert report.qubits >= compiled.num_qubits()
        assert report.heap_qubits == CFG.heap_cells * compiled.cell_bits
        assert report.data_qubits > 0
        assert (report.data_qubits + report.heap_qubits
                + report.scratch_qubits == report.qubits)
        assert report.area_latency == report.qubits * report.t_depth

    def test_spire_reduces_t_depth_too(self, length_source):
        plain = estimate_resources(compile_source(length_source, "length", size=4, config=CFG))
        spire = estimate_resources(
            compile_source(length_source, "length", size=4, config=CFG, optimization="spire")
        )
        assert spire.t_depth < plain.t_depth
        assert spire.t_count < plain.t_count
