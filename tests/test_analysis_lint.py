"""Lint regressions: every diagnostic code, both historical corpus bugs
flagged statically, and lint stability across optimization presets."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.analysis import (
    DEFAULT_LINT_SIZE,
    check_dead_bindings,
    check_dead_branches,
    check_empty_blocks,
    check_hadamard_budget,
    check_zero_bound_calls,
    inlined_hadamard_count,
    lint_core_stmt,
    lint_source,
    pick_entry,
)
from repro.benchsuite.programs import (
    SOURCES,
    get_entry,
    get_source,
    is_unsized,
)
from repro.ir import core
from repro.lang.desugar import lower_entry
from repro.lang.parser import parse_program
from repro.opt import OPTIMIZATIONS

CASES = Path(__file__).parent / "corpus" / "cases"

H_WALK_SRC = """
fun walk[n](x: bool) -> bool {
  H(x);
  let y <- walk[n-1](x);
  return y;
}
"""


def _codes(diags):
    return [d.code for d in diags]


class TestHistoricalBugs:
    def test_guarded_redeclare_corpus_case_is_flagged(self):
        """The infer_types binding-count bug: its shrunk reproducer
        re-declares a parameter inside a with-setup. The linter must call
        out the idiom (RPA103) even though the program now compiles."""
        case = json.loads(
            (CASES / "infer-types-guarded-redeclare.json").read_text()
        )
        report = lint_source(
            case["source"], entry=case["entry"], size=case["size"]
        )
        assert "RPA103" in _codes(report.diagnostics)
        # the program is legal: an info finding, not an error
        assert not report.errors

    def test_hadamard_multiplicity_bug_is_flagged(self):
        """The Hadamard under-counting bug (count vs. multiplicity under
        inlining): a single textual H in a recursive function multiplies
        with the bound. RPA301 must fire from the *inlined* count."""
        program = parse_program(H_WALK_SRC)
        # one textual H, `size` inlined copies
        assert inlined_hadamard_count(program, "walk", 5) == 5
        assert not check_hadamard_budget(program, "walk", 12)
        diags = check_hadamard_budget(program, "walk", 13)
        assert _codes(diags) == ["RPA301"]
        assert "2^13" in diags[0].message

    def test_inlined_count_matches_lowered_core(self):
        program = parse_program(H_WALK_SRC)
        for size in (1, 3, 5):
            lowered = lower_entry(program, "walk", size)
            direct = sum(
                1
                for s in lowered.stmt.walk()
                if isinstance(s, core.Hadamard)
            )
            assert inlined_hadamard_count(program, "walk", size) == direct


class TestCodes:
    def test_rpa101_with_body_modifies_setup_dep(self):
        stmt = core.With(
            core.Assign("a", core.AtomE(core.Var("x"))),
            core.Assign("x", core.AtomE(core.Lit(core.UIntV(1)))),
        )
        diags = lint_core_stmt(stmt)
        assert _codes(diags) == ["RPA101"]
        assert diags[0].severity == "error"

    def test_rpa101_clean_with(self):
        stmt = core.With(
            core.Assign("a", core.AtomE(core.Var("x"))),
            core.Assign("b", core.AtomE(core.Var("a"))),
        )
        assert lint_core_stmt(stmt) == []

    def test_rpa102_dead_binding(self):
        src = """
        fun main(x: uint) -> uint {
          let dead <- x + 1;
          let y <- x;
          return y;
        }
        """
        fdef = parse_program(src).fundefs[0]
        diags = check_dead_bindings(fdef)
        assert _codes(diags) == ["RPA102"]
        assert "'dead'" in diags[0].message

    def test_rpa102_used_bindings_are_clean(self):
        src = """
        fun main(x: uint) -> uint {
          let a <- x + 1;
          let y <- a;
          return y;
        }
        """
        assert check_dead_bindings(parse_program(src).fundefs[0]) == []

    def test_rpa201_constant_condition(self):
        src = """
        fun main(x: uint) -> uint {
          let c <- 3 == 3;
          if c { let y <- 1; } else { let y <- 2; }
          return y;
        }
        """
        fdef = parse_program(src).fundefs[0]
        assert _codes(check_dead_branches(fdef)) == ["RPA201"]

    def test_rpa201_data_dependent_condition_is_clean(self):
        src = """
        fun main(x: uint) -> uint {
          let c <- x == 3;
          if c { let y <- 1; } else { let y <- 2; }
          return y;
        }
        """
        fdef = parse_program(src).fundefs[0]
        assert check_dead_branches(fdef) == []

    def test_rpa202_empty_blocks(self):
        src = """
        fun main(x: uint) -> uint {
          let c <- x == 1;
          if c { } else { let y <- 2; }
          return x;
        }
        """
        fdef = parse_program(src).fundefs[0]
        assert _codes(check_empty_blocks(fdef)) == ["RPA202"]

    def test_rpa203_zero_bound_call(self):
        src = """
        fun f[n](x: uint) -> uint {
          let y <- x;
          return y;
        }
        fun main(x: uint) -> uint {
          let y <- f[0](x);
          return y;
        }
        """
        program = parse_program(src)
        main = program.fun("main")
        assert _codes(check_zero_bound_calls(main)) == ["RPA203"]

    def test_rpa001_no_parse(self):
        report = lint_source("fun main( {", path="broken.twr")
        assert _codes(report.diagnostics) == ["RPA001"]
        assert report.errors
        assert report.exit_code() == 1

    def test_rpa002_unknown_entry(self, length_source):
        report = lint_source(length_source, entry="nope")
        assert _codes(report.diagnostics) == ["RPA002"]


class TestEndToEnd:
    def test_pick_entry_prefers_main(self):
        src = "fun helper(x: uint) -> uint { return x; }"
        assert pick_entry(parse_program(src)) == "helper"
        two = src + "\nfun main(x: uint) -> uint { return x; }"
        assert pick_entry(parse_program(two)) == "main"

    def test_lint_source_defaults_size_for_sized_entry(self, length_source):
        report = lint_source(length_source, entry="length")
        assert report.size == DEFAULT_LINT_SIZE
        assert not report.errors

    @pytest.mark.parametrize("name", sorted(SOURCES))
    def test_table1_is_error_clean(self, name):
        """Every Table-1 benchmark lints without error-severity findings
        (infos such as the guarded-XOR idiom are expected and allowed)."""
        size = None if is_unsized(name) else DEFAULT_LINT_SIZE
        report = lint_source(
            get_source(name), entry=get_entry(name), size=size
        )
        assert not report.errors, [d.row() for d in report.errors]

    @pytest.mark.parametrize("preset", sorted(OPTIMIZATIONS))
    def test_lint_stable_under_presets(self, length_source, preset):
        """No optimization preset may introduce an error-severity core
        finding into a program whose reference lowering is clean."""
        program = parse_program(length_source)
        lowered = lower_entry(program, "length", 3)
        assert lint_core_stmt(lowered.stmt) == []
        rewritten = OPTIMIZATIONS[preset](lowered.stmt)
        assert lint_core_stmt(rewritten) == []
