"""Tests for the circuit-optimizer baselines (Section 8.3 stand-ins)."""

import pytest

from repro.circopt import (
    cancel_to_fixpoint,
    fold_phases,
    gates_commute,
    get_optimizer,
    optimizer_names,
)
from repro.circuit import (
    Circuit,
    cnot,
    h,
    mcx,
    s,
    sdg,
    t,
    tdg,
    to_clifford_t,
    toffoli,
    x,
    z,
)
from repro.circuit.statevector import circuits_equivalent, equivalent_on_clean_ancillas
from repro.compiler import compile_source
from repro.config import CompilerConfig

CFG = CompilerConfig(word_width=3, addr_width=3, heap_cells=5)


class TestCommutation:
    def test_disjoint_gates_commute(self):
        assert gates_commute(cnot(0, 1), cnot(2, 3))

    def test_x_type_rule(self):
        # same target, disjoint controls: commute
        assert gates_commute(cnot(0, 2), cnot(1, 2))
        # target feeds the other's control: do not commute
        assert not gates_commute(cnot(0, 1), cnot(1, 2))

    def test_phase_on_control_commutes(self):
        assert gates_commute(t(0), cnot(0, 1))
        assert not gates_commute(t(1), cnot(0, 1))

    def test_phases_always_commute(self):
        assert gates_commute(t(0), z(0))

    def test_h_blocks(self):
        assert not gates_commute(h(0), cnot(0, 1))


class TestCancellation:
    def test_adjacent_self_inverse_pair(self):
        assert cancel_to_fixpoint([cnot(0, 1), cnot(0, 1)]) == []

    def test_t_tdg_pair(self):
        assert cancel_to_fixpoint([t(0), tdg(0)]) == []

    def test_cancellation_through_commuting_gates(self):
        gates = [toffoli(0, 1, 2), cnot(3, 4), toffoli(0, 1, 2)]
        assert cancel_to_fixpoint(gates) == [cnot(3, 4)]

    def test_blocked_cancellation_survives(self):
        gates = [cnot(0, 1), h(1), cnot(0, 1)]
        assert len(cancel_to_fixpoint(gates)) == 3

    def test_phase_merging(self):
        assert cancel_to_fixpoint([t(0), t(0)]) == [s(0)]
        assert cancel_to_fixpoint([s(0), s(0)]) == [z(0)]
        assert cancel_to_fixpoint([t(0), s(0), t(0)]) == [z(0)]

    def test_cascading_cancellation(self):
        # mirrored ladder: everything cancels pairwise inward-out
        ladder = [toffoli(0, 1, 4), toffoli(4, 2, 5), toffoli(5, 3, 6)]
        gates = ladder + [x(7)] + list(reversed(ladder))
        assert cancel_to_fixpoint(gates) == [x(7)]

    def test_preserves_semantics(self):
        gates = [t(0), cnot(0, 1), cnot(0, 1), tdg(0), h(1), h(1), t(0)]
        reduced = cancel_to_fixpoint(gates)
        assert circuits_equivalent(Circuit(2, gates), Circuit(2, reduced))


class TestPhaseFolding:
    def test_merges_rotations_on_same_parity(self):
        # T on x, CNOTs shuffle, T on same parity elsewhere
        gates = [t(0), cnot(0, 1), tdg(1), cnot(0, 1)]
        # parity of qubit 1 after CNOT is x0^x1; tdg applies to that parity,
        # not x0 — nothing merges, semantics preserved.
        folded = fold_phases(Circuit(2, gates))
        assert circuits_equivalent(Circuit(2, gates), folded)

    def test_cancels_t_tdg_across_cnots(self):
        gates = [t(0), cnot(1, 0), cnot(1, 0), tdg(0)]
        folded = fold_phases(Circuit(2, gates))
        assert folded.t_count() == 0
        assert circuits_equivalent(Circuit(2, gates), folded)

    def test_merges_across_unrelated_h(self):
        # H on qubit 1 does not cut parities on qubit 0
        gates = [t(0), h(1), tdg(0)]
        folded = fold_phases(Circuit(2, gates))
        assert folded.t_count() == 0

    def test_h_cuts_own_wire(self):
        gates = [t(0), h(0), tdg(0)]
        folded = fold_phases(Circuit(1, gates))
        assert folded.t_count() == 2

    def test_adjacent_toffoli_pair_needs_hh_removal_first(self):
        # Figure 17: the decomposed double-Toffoli only folds to zero T
        # after the inner H·H pair is cancelled.
        pair = Circuit(3, [toffoli(0, 1, 2), toffoli(0, 1, 2)])
        decomposed = to_clifford_t(pair)
        folded_only = fold_phases(decomposed)
        assert folded_only.t_count() > 0  # rotation merging alone: stuck
        cancelled = cancel_to_fixpoint(decomposed.gates)
        folded = fold_phases(Circuit(decomposed.num_qubits, cancelled))
        assert folded.t_count() == 0  # after peephole HH removal: all T gone

    def test_preserves_semantics_on_mixed_circuit(self):
        gates = [
            h(0), t(0), cnot(0, 1), t(1), x(1), tdg(1), cnot(0, 1), s(0), h(1), t(1),
        ]
        folded = fold_phases(Circuit(2, gates))
        assert circuits_equivalent(Circuit(2, gates), folded)

    def test_x_conjugation_negates_phase(self):
        gates = [x(0), t(0), x(0), t(0)]
        folded = fold_phases(Circuit(1, gates))
        # exp(i pi/4 (1-x)) * exp(i pi/4 x) = global phase: both T's vanish
        assert folded.t_count() == 0
        assert circuits_equivalent(Circuit(1, gates), folded)


class TestOptimizers:
    def test_registry(self):
        assert set(optimizer_names()) == {
            "peephole",
            "toffoli-cancel",
            "rotation-merge",
            "zx-like",
            "greedy-search",
        }
        with pytest.raises(KeyError):
            get_optimizer("nope")

    @pytest.mark.parametrize("name", ["peephole", "toffoli-cancel", "rotation-merge", "zx-like"])
    def test_output_is_clifford_t(self, name, length_source):
        cp = compile_source(length_source, "length", size=2, config=CFG)
        result = get_optimizer(name).optimize(cp.circuit)
        assert result.circuit.is_clifford_t()
        assert result.seconds >= 0

    @pytest.mark.parametrize("name", ["peephole", "toffoli-cancel", "rotation-merge", "zx-like"])
    def test_preserves_semantics_small(self, name):
        circ = Circuit(
            4,
            [
                mcx([0, 1, 2], 3),
                toffoli(0, 1, 2),
                toffoli(0, 1, 2),
                cnot(0, 1),
                mcx([0, 1, 2], 3),
            ],
        )
        result = get_optimizer(name).optimize(circ)
        assert equivalent_on_clean_ancillas(circ, result.circuit)

    def test_toffoli_cancel_removes_redundant_mcx_pairs(self):
        circ = Circuit(4, [mcx([0, 1, 2], 3), mcx([0, 1, 2], 3)])
        result = get_optimizer("toffoli-cancel").optimize(circ)
        assert result.t_count == 0

    def test_peephole_cannot_cancel_decomposed_toffoli_pair(self):
        # the Figure 17 phenomenon: Qiskit-style peephole fails
        circ = Circuit(3, [toffoli(0, 1, 2), toffoli(0, 1, 2)])
        peep = get_optimizer("peephole").optimize(circ)
        tofc = get_optimizer("toffoli-cancel").optimize(circ)
        assert tofc.t_count == 0
        assert peep.t_count > 0

    def test_greedy_search_preprocess_only(self, length_source):
        cp = compile_source(length_source, "length", size=2, config=CFG)
        pre = get_optimizer("greedy-search", timeout=0.0, preprocess_only=True)
        result = pre.optimize(cp.circuit)
        assert result.circuit.is_clifford_t()

    @pytest.mark.slow
    def test_greedy_search_respects_budget(self, length_source):
        # wall-clock-bounded search phase: slow tier (timing-dependent)
        cp = compile_source(length_source, "length", size=2, config=CFG)
        result = get_optimizer("greedy-search", timeout=0.2).optimize(cp.circuit)
        assert result.circuit.is_clifford_t()
