"""The example scripts must run end-to-end and print sensible results."""

import os
import pathlib
import subprocess
import sys

import pytest

EXAMPLES = pathlib.Path(__file__).resolve().parent.parent / "examples"
SRC = EXAMPLES.parent / "src"


def run_example(name: str) -> str:
    # the subprocess does not inherit pytest's import path, so make the
    # package importable explicitly (works with or without `pip install -e .`)
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + (
        os.pathsep + env["PYTHONPATH"] if env.get("PYTHONPATH") else ""
    )
    result = subprocess.run(
        [sys.executable, name],
        cwd=EXAMPLES,
        capture_output=True,
        text=True,
        timeout=300,
        env=env,
    )
    assert result.returncode == 0, result.stderr
    return result.stdout


def test_quickstart():
    out = run_example("quickstart.py")
    assert "unoptimized:" in out
    assert "with Spire" in out
    assert out.count("has length 3") == 2


def test_cost_analysis():
    out = run_example("cost_analysis.py")
    assert "[O(n)]" in out
    assert "[O(n^2)]" in out
    assert "T after Spire" in out


def test_optimizer_comparison():
    out = run_example("optimizer_comparison.py")
    assert "Spire (program-level)" in out
    assert "toffoli-cancel" in out
    assert "zx-like" in out


def test_quantum_data_structures():
    out = run_example("quantum_data_structures.py")
    assert "length=3, sum=15, find_pos(5)=2" in out
    assert "set.contains([4]) after insert = True" in out
