"""Tests for the core IR reference interpreter."""

import pytest

from repro.config import CompilerConfig
from repro.errors import SimulationError
from repro.ir import (
    Assign,
    AtomE,
    BinOp,
    BoolV,
    Hadamard,
    If,
    Lit,
    MemSwap,
    Pair,
    Proj,
    PtrV,
    Swap,
    UIntV,
    UnAssign,
    UnOp,
    Var,
    With,
    run_program,
    seq,
)
from repro.types import UINT, NamedT, PtrT, TupleT, TypeTable


@pytest.fixture
def table():
    t = TypeTable(CompilerConfig(word_width=4, addr_width=3, heap_cells=5))
    t.declare("list", TupleT(UINT, PtrT(NamedT("list"))))
    return t


def lit(n):
    return AtomE(Lit(UIntV(n)))


class TestExpressions:
    @pytest.mark.parametrize(
        "op,a,b,expected",
        [
            ("+", 9, 9, 2),  # mod 16
            ("-", 3, 5, 14),
            ("*", 5, 3, 15),
            ("*", 5, 7, 3),  # mod 16
            ("==", 4, 4, 1),
            ("!=", 4, 4, 0),
            ("<", 3, 9, 1),
            (">", 3, 9, 0),
        ],
    )
    def test_binops(self, table, op, a, b, expected):
        s = seq(
            Assign("a", lit(a)),
            Assign("b", lit(b)),
            Assign("r", BinOp(op, Var("a"), Var("b"))),
        )
        m = run_program(s, table)
        assert m.registers["r"] == expected

    def test_logic_ops(self, table):
        s = seq(
            Assign("t", AtomE(Lit(BoolV(True)))),
            Assign("f", AtomE(Lit(BoolV(False)))),
            Assign("a", BinOp("&&", Var("t"), Var("f"))),
            Assign("o", BinOp("||", Var("t"), Var("f"))),
            Assign("n", UnOp("not", Var("f"))),
        )
        m = run_program(s, table)
        assert (m.registers["a"], m.registers["o"], m.registers["n"]) == (0, 1, 1)

    def test_test_op(self, table):
        s = seq(
            Assign("z", lit(0)),
            Assign("x", lit(7)),
            Assign("a", UnOp("test", Var("z"))),
            Assign("b", UnOp("test", Var("x"))),
        )
        m = run_program(s, table)
        assert (m.registers["a"], m.registers["b"]) == (0, 1)

    def test_pair_and_projections(self, table):
        s = seq(
            Assign("t", Pair(Lit(UIntV(5)), Lit(UIntV(9)))),
            Assign("a", Proj(1, Var("t"))),
            Assign("b", Proj(2, Var("t"))),
        )
        m = run_program(s, table)
        assert m.registers["t"] == 5 | (9 << 4)
        assert (m.registers["a"], m.registers["b"]) == (5, 9)


class TestStatements:
    def test_redeclaration_xors(self, table):
        s = seq(Assign("x", lit(5)), Assign("x", lit(3)))
        m = run_program(s, table)
        assert m.registers["x"] == 5 ^ 3

    def test_unassign_zeroes(self, table):
        s = seq(Assign("x", lit(5)), UnAssign("x", lit(5)))
        m = run_program(s, table)
        assert m.registers["x"] == 0

    def test_swap(self, table):
        s = seq(Assign("a", lit(1)), Assign("b", lit(2)), Swap("a", "b"))
        m = run_program(s, table)
        assert (m.registers["a"], m.registers["b"]) == (2, 1)

    def test_if_taken_and_untaken(self, table):
        s = seq(
            Assign("c", AtomE(Lit(BoolV(True)))),
            Assign("d", AtomE(Lit(BoolV(False)))),
            Assign("x", lit(0)),
            If("c", Assign("x", lit(1))),
            If("d", Assign("x", lit(2))),
        )
        m = run_program(s, table)
        assert m.registers["x"] == 1

    def test_with_uncomputes_setup(self, table):
        s = With(Assign("t", lit(3)), Assign("y", AtomE(Var("t"))))
        m = run_program(s, table)
        assert m.registers["t"] == 0
        assert m.registers["y"] == 3

    def test_hadamard_has_no_classical_semantics(self, table):
        s = seq(Assign("b", AtomE(Lit(BoolV(False)))), Hadamard("b"))
        with pytest.raises(SimulationError):
            run_program(s, table)


class TestMemory:
    def test_memswap_exchanges(self, table):
        s = seq(
            Assign("p", AtomE(Lit(PtrV(2, NamedT("list"))))),
            Assign("v", Pair(Lit(UIntV(7)), Lit(PtrV(0, NamedT("list"))))),
            MemSwap("p", "v"),
        )
        mem = [0] * 6
        mem[2] = 5 | (3 << 4)
        m = run_program(s, table, memory=mem)
        assert m.registers["v"] == 5 | (3 << 4)
        assert m.memory[2] == 7

    def test_null_dereference_is_noop(self, table):
        s = seq(
            Assign("p", AtomE(Lit(PtrV(0, NamedT("list"))))),
            Assign("v", Pair(Lit(UIntV(7)), Lit(PtrV(0, NamedT("list"))))),
            MemSwap("p", "v"),
        )
        m = run_program(s, table)
        assert m.registers["v"] == 7
        assert all(cell == 0 for cell in m.memory)

    def test_out_of_range_address_rejected(self, table):
        s = seq(
            Assign("p", AtomE(Lit(PtrV(7, NamedT("list"))))),
            Assign("v", Pair(Lit(UIntV(1)), Lit(PtrV(0, NamedT("list"))))),
            MemSwap("p", "v"),
        )
        with pytest.raises(SimulationError):
            run_program(s, table)

    def test_bad_memory_size_rejected(self, table):
        with pytest.raises(SimulationError):
            run_program(Assign("x", lit(0)), table, memory=[0, 0])


class TestReversibility:
    def test_program_followed_by_reverse_is_identity(self, table):
        from repro.ir import reverse

        body = seq(
            Assign("a", lit(3)),
            Assign("b", BinOp("+", Var("a"), Lit(UIntV(4)))),
            Swap("a", "b"),
            If_cond := Assign("c", BinOp("<", Var("a"), Var("b"))),
        )
        program = seq(body, reverse(body))
        m = run_program(program, table)
        assert all(v == 0 for v in m.registers.values())
