"""Tests for the classical and statevector simulators and the .qc format."""

import math

import numpy as np
import pytest

from repro.circuit import Circuit, Register, cnot, h, mcx, s, swap, t, toffoli, x, z
from repro.circuit import classical_sim, qc_format
from repro.circuit.statevector import (
    basis_state,
    circuits_equivalent,
    run,
    states_equal,
    unitary,
    zero_state,
)
from repro.errors import ParseError, SimulationError


class TestClassicalSim:
    def test_x_flips(self):
        assert classical_sim.run(Circuit(1, [x(0)]), 0) == 1

    def test_cnot_controlled(self):
        circ = Circuit(2, [cnot(0, 1)])
        assert classical_sim.run(circ, 0b01) == 0b11
        assert classical_sim.run(circ, 0b00) == 0b00

    def test_toffoli(self):
        circ = Circuit(3, [toffoli(0, 1, 2)])
        assert classical_sim.run(circ, 0b011) == 0b111
        assert classical_sim.run(circ, 0b001) == 0b001

    def test_mcx_many_controls(self):
        circ = Circuit(5, [mcx([0, 1, 2, 3], 4)])
        assert classical_sim.run(circ, 0b01111) == 0b11111

    def test_swap(self):
        circ = Circuit(2, [swap(0, 1)])
        assert classical_sim.run(circ, 0b01) == 0b10

    def test_controlled_swap(self):
        gate = swap(1, 2).with_extra_controls([0])
        circ = Circuit(3, [gate])
        assert classical_sim.run(circ, 0b011) == 0b101
        assert classical_sim.run(circ, 0b010) == 0b010

    def test_phase_gates_fix_basis_states(self):
        circ = Circuit(1, [t(0), s(0), z(0)])
        assert classical_sim.run(circ, 1) == 1

    def test_h_rejected(self):
        with pytest.raises(SimulationError):
            classical_sim.run(Circuit(1, [h(0)]), 0)

    def test_register_pack_unpack(self):
        circ = Circuit(4, [cnot(0, 2)])
        circ.add_register(Register("a", 0, 2))
        circ.add_register(Register("b", 2, 2))
        out = classical_sim.run_on_registers(circ, {"a": 0b01})
        assert out["b"] == 0b01

    def test_pack_rejects_oversized_value(self):
        circ = Circuit(2, [])
        circ.add_register(Register("a", 0, 2))
        with pytest.raises(SimulationError):
            classical_sim.pack({"a": 4}, circ)

    def test_pack_rejects_unknown_register(self):
        with pytest.raises(SimulationError):
            classical_sim.pack({"zz": 1}, Circuit(1, []))


class TestStatevector:
    def test_h_creates_superposition(self):
        state = run(Circuit(1, [h(0)]))
        assert np.allclose(np.abs(state) ** 2, [0.5, 0.5])

    def test_hh_is_identity(self):
        assert circuits_equivalent(Circuit(1, [h(0), h(0)]), Circuit(1, []))

    def test_t_phase(self):
        state = run(Circuit(1, [t(0)]), basis_state(1, 1))
        assert np.allclose(state[1], np.exp(1j * math.pi / 4))

    def test_z_eq_ss(self):
        assert circuits_equivalent(Circuit(1, [s(0), s(0)]), Circuit(1, [z(0)]))

    def test_t4_eq_z(self):
        assert circuits_equivalent(Circuit(1, [t(0)] * 4), Circuit(1, [z(0)]))

    def test_x_eq_hzh(self):
        assert circuits_equivalent(
            Circuit(1, [h(0), z(0), h(0)]), Circuit(1, [x(0)])
        )

    def test_cnot_matrix(self):
        mat = unitary(Circuit(2, [cnot(0, 1)]))
        # qubit 0 is the low bit: |01> (=1) maps to |11> (=3)
        assert np.isclose(mat[3, 1], 1)
        assert np.isclose(mat[0, 0], 1)

    def test_states_equal_up_to_phase(self):
        a = zero_state(2)
        b = np.exp(1j * 0.7) * a
        assert states_equal(a, b)

    def test_states_differ(self):
        assert not states_equal(basis_state(1, 0), basis_state(1, 1))

    def test_bad_state_size_rejected(self):
        with pytest.raises(SimulationError):
            run(Circuit(2, [x(0)]), zero_state(1))

    def test_classical_agreement_on_mcx_circuits(self):
        circ = Circuit(3, [x(0), toffoli(0, 1, 2), cnot(0, 1), x(1)])
        for bits in range(8):
            expected = classical_sim.run(circ, bits)
            state = run(circ, basis_state(3, bits))
            assert states_equal(state, basis_state(3, expected))


class TestQcFormat:
    def test_roundtrip(self):
        circ = Circuit(3, [toffoli(0, 1, 2), h(0), t(1), x(2), cnot(1, 0)])
        text = qc_format.dumps(circ)
        parsed = qc_format.loads(text)
        assert parsed.gates == circ.gates
        assert parsed.num_qubits == circ.num_qubits

    def test_register_names_used(self):
        circ = Circuit(2, [cnot(0, 1)])
        circ.add_register(Register("acc", 0, 2))
        text = qc_format.dumps(circ)
        assert "acc_0" in text and "acc_1" in text

    def test_tdg_spelling(self):
        from repro.circuit import tdg

        text = qc_format.dumps(Circuit(1, [tdg(0)]))
        assert "T* q0" in text

    def test_parse_rejects_unknown_wire(self):
        with pytest.raises(ParseError):
            qc_format.loads(".v a\nBEGIN\ntof b\nEND")

    def test_parse_rejects_unknown_gate(self):
        with pytest.raises(ParseError):
            qc_format.loads(".v a\nBEGIN\nfrobnicate a\nEND")

    def test_file_roundtrip(self, tmp_path):
        circ = Circuit(2, [cnot(0, 1), h(1)])
        path = tmp_path / "circ.qc"
        qc_format.dump(circ, str(path))
        assert qc_format.load(str(path)).gates == circ.gates

    def test_comments_and_blank_lines_ignored(self):
        text = ".v a b\n\n# comment\nBEGIN\ntof a b\nEND\n"
        parsed = qc_format.loads(text)
        assert parsed.gates == [cnot(0, 1)]


class TestSparseCanonicalization:
    def test_canonical_fixes_global_phase(self):
        from repro.circuit.statevector import canonical_sparse

        state = {0: 0.5 + 0.5j, 3: -0.5 - 0.5j}
        canon = canonical_sparse(state)
        anchor = canon[0]
        assert abs(anchor.imag) < 1e-12 and anchor.real > 0

    def test_prunes_small_amplitudes(self):
        from repro.circuit.statevector import canonical_sparse

        canon = canonical_sparse({0: 1.0, 5: 1e-15})
        assert 5 not in canon

    def test_states_equal_up_to_phase(self):
        import cmath

        from repro.circuit.statevector import sparse_states_equal

        a = {0: 1 / math.sqrt(2), 2: 1 / math.sqrt(2)}
        phase = cmath.exp(1j * 0.73)
        b = {idx: amp * phase for idx, amp in a.items()}
        assert sparse_states_equal(a, b)

    def test_states_differ_in_amplitude(self):
        from repro.circuit.statevector import sparse_states_equal

        a = {0: 1 / math.sqrt(2), 2: 1 / math.sqrt(2)}
        b = {0: 1 / math.sqrt(2), 2: -1 / math.sqrt(2)}
        assert not sparse_states_equal(a, b)

    def test_states_differ_in_support(self):
        from repro.circuit.statevector import sparse_states_equal

        assert not sparse_states_equal({0: 1.0}, {1: 1.0})

    def test_matches_dense_up_to_phase_on_h_circuit(self):
        from repro.circuit.statevector import (
            sparse_run,
            sparse_states_equal,
            sparse_to_dense,
        )

        circ = Circuit(3, [h(0), cnot(0, 1), t(1), h(2), z(2)])
        amps = sparse_run(circ, 0b100)
        dense = run(circ, basis_state(3, 0b100))
        assert states_equal(dense, sparse_to_dense(amps, 3))
        again = sparse_run(circ, 0b100)
        assert sparse_states_equal(amps, again)
