"""Tests for exact polynomial fitting (the Section 8.1 methodology)."""

from fractions import Fraction

import pytest

from repro.cost.asymptotics import (
    evaluate,
    fit_degree,
    fit_polynomial,
    fit_report,
    format_polynomial,
    measure_scaling,
)


class TestFitting:
    def test_constant(self):
        coeffs = fit_polynomial([2, 3, 4, 5], [7, 7, 7, 7])
        assert coeffs == [Fraction(7)]

    def test_linear(self):
        coeffs = fit_polynomial([2, 3, 4, 5], [5, 7, 9, 11])
        assert coeffs == [Fraction(1), Fraction(2)]

    def test_quadratic(self):
        xs = list(range(2, 9))
        ys = [3 * x * x + 2 * x + 1 for x in xs]
        coeffs = fit_polynomial(xs, ys)
        assert coeffs == [Fraction(1), Fraction(2), Fraction(3)]

    def test_cubic_with_rational_coefficients(self):
        xs = list(range(1, 8))
        ys = [x * (x + 1) * (x + 2) // 2 for x in xs]
        coeffs = fit_polynomial(xs, ys)
        assert evaluate(coeffs, 10) == 10 * 11 * 12 // 2

    def test_lowest_degree_is_chosen(self):
        # points that a line fits exactly must not yield degree 3
        assert fit_degree([1, 2, 3, 4], [2, 4, 6, 8]) == 1

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            fit_polynomial([1, 2], [1])


class TestFormatting:
    def test_table1_style(self):
        assert (
            format_polynomial([Fraction(3934), Fraction(19292), Fraction(15722)])
            == "15722n^2+19292n+3934"
        )

    def test_negative_constant(self):
        assert format_polynomial([Fraction(-42), Fraction(12740)]) == "12740n-42"

    def test_zero(self):
        assert format_polynomial([Fraction(0)]) == "0"

    def test_unit_coefficient(self):
        assert format_polynomial([Fraction(0), Fraction(1)]) == "n"

    def test_rational_coefficient(self):
        text = format_polynomial([Fraction(0), Fraction(1, 3)])
        assert "(1/3)" in text


class TestReports:
    def test_big_o_rendering(self):
        assert fit_report([1, 2, 3], [5, 5, 5]).big_o == "O(1)"
        assert fit_report([1, 2, 3], [1, 2, 3]).big_o == "O(n)"
        assert fit_report([1, 2, 3, 4], [1, 4, 9, 16]).big_o == "O(n^2)"

    def test_measure_scaling(self):
        report = measure_scaling(lambda n: 2 * n + 1, [2, 3, 4, 5])
        assert report.degree == 1
        assert report.polynomial == "2n+1"

    def test_str(self):
        assert "O(n)" in str(fit_report([1, 2], [3, 6]))
