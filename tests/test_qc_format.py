"""Round-trip tests for the .qc circuit serialization format."""

import pytest

from repro.circuit import qc_format
from repro.circuit.circuit import Circuit, Register
from repro.circuit.gates import (
    Gate,
    GateKind,
    cnot,
    h,
    mcx,
    s,
    sdg,
    swap,
    t,
    tdg,
    toffoli,
    x,
    z,
)
from repro.errors import ParseError


def roundtrip(circuit: Circuit) -> Circuit:
    return qc_format.loads(qc_format.dumps(circuit))


class TestRoundTrip:
    def test_single_qubit_gates(self):
        circuit = Circuit(2, [h(0), t(0), tdg(1), s(1), sdg(0), z(1), x(0)])
        loaded = roundtrip(circuit)
        assert loaded.num_qubits == 2
        assert loaded.gates == circuit.gates

    def test_cnot_and_toffoli(self):
        circuit = Circuit(4, [cnot(0, 1), toffoli(0, 1, 2), x(3)])
        loaded = roundtrip(circuit)
        assert loaded.gates == circuit.gates

    def test_multi_controlled_mcx(self):
        gate = mcx([0, 1, 2, 3, 5], 4)
        circuit = Circuit(6, [gate])
        loaded = roundtrip(circuit)
        assert loaded.gates == [gate]
        assert loaded.gates[0].controls == (0, 1, 2, 3, 5)
        assert loaded.gates[0].target == 4

    def test_swap(self):
        circuit = Circuit(3, [swap(0, 2)])
        loaded = roundtrip(circuit)
        assert loaded.gates[0].kind is GateKind.SWAP
        assert loaded.gates[0].targets == (0, 2)

    def test_empty_circuit(self):
        circuit = Circuit(3, [])
        loaded = roundtrip(circuit)
        assert loaded.num_qubits == 3
        assert loaded.gates == []

    def test_wide_circuit_beyond_64_wires(self):
        """Wire counts past 64 exercise the bigint paths end to end."""
        n = 70
        gates = [x(i) for i in range(n)] + [
            mcx(list(range(64, 69)), 69),
            cnot(0, 69),
            h(65),
        ]
        circuit = Circuit(n, gates)
        loaded = roundtrip(circuit)
        assert loaded.num_qubits == n
        assert loaded.gates == circuit.gates

    def test_wire_order_follows_v_line(self):
        text = (
            ".v a b c\n"
            ".i a b c\n"
            "BEGIN\n"
            "tof c a\n"
            "END\n"
        )
        circuit = qc_format.loads(text)
        assert circuit.num_qubits == 3
        assert circuit.gates[0].controls == (2,)
        assert circuit.gates[0].target == 0


class TestRegisterNames:
    def test_register_map_names_wires(self):
        circuit = Circuit(3, [cnot(0, 2)])
        circuit.add_register(Register("x", 0, 2))
        circuit.add_register(Register("flag", 2, 1))
        text = qc_format.dumps(circuit)
        assert ".v x_0 x_1 flag" in text
        loaded = qc_format.loads(text)
        assert loaded.gates == circuit.gates

    def test_duplicate_wire_names_are_uniqued(self):
        circuit = Circuit(2, [cnot(0, 1)])
        circuit.add_register(Register("x", 0, 1))
        circuit.add_register(Register("x", 1, 1))
        text = qc_format.dumps(circuit)
        loaded = qc_format.loads(text)
        assert loaded.gates == circuit.gates

    def test_scratch_register_is_sanitized(self):
        circuit = Circuit(2, [x(1)])
        circuit.add_register(Register("%scratch", 1, 1))
        text = qc_format.dumps(circuit)
        assert "%" not in text.splitlines()[0]
        assert qc_format.loads(text).gates == circuit.gates


class TestErrors:
    def test_controlled_swap_rejected(self):
        gate = Gate(GateKind.SWAP, (0,), (1, 2))
        with pytest.raises(ParseError):
            qc_format.dumps(Circuit(3, [gate]))

    def test_controlled_phase_rejected(self):
        gate = Gate(GateKind.T, (0,), (1,))
        with pytest.raises(ParseError):
            qc_format.dumps(Circuit(2, [gate]))

    def test_unknown_wire_rejected(self):
        text = ".v a\nBEGIN\ntof b\nEND\n"
        with pytest.raises(ParseError):
            qc_format.loads(text)

    def test_duplicate_wire_rejected(self):
        with pytest.raises(ParseError):
            qc_format.loads(".v a a\nBEGIN\nEND\n")

    def test_gate_outside_body_rejected(self):
        with pytest.raises(ParseError):
            qc_format.loads(".v a\ntof a\n")

    def test_unknown_gate_rejected(self):
        with pytest.raises(ParseError):
            qc_format.loads(".v a\nBEGIN\nfoo a\nEND\n")


class TestFiles:
    def test_dump_load_file(self, tmp_path):
        circuit = Circuit(3, [toffoli(0, 1, 2), h(1)])
        path = tmp_path / "circuit.qc"
        qc_format.dump(circuit, str(path))
        assert qc_format.load(str(path)).gates == circuit.gates

    def test_compiled_program_roundtrips(self, tiny_config):
        from repro.compiler import compile_source

        source = (
            "fun main(x: uint) -> uint {\n"
            "  let y <- x + 1;\n  return y;\n}\n"
        )
        compiled = compile_source(source, "main", None, tiny_config)
        loaded = roundtrip(compiled.circuit)
        assert loaded.gates == compiled.circuit.gates
