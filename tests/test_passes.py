"""The pass framework: specs, registry, manager, caching, bisection, CLI."""

import pytest

from repro.benchsuite import ArtifactCache, BenchmarkRunner, task_key
from repro.cli import main
from repro.compiler import compile_source
from repro.config import CompilerConfig
from repro.errors import ReproError
from repro.ir.core import If, Seq, Var, Assign
from repro.passes import (
    GATES,
    IR,
    Pass,
    PassError,
    PassManager,
    PassVerificationError,
    Pipeline,
    SEMANTICS_PRESERVING,
    canonical_pipeline,
    pass_catalog,
    pass_names,
    register_pass,
    resolve_pipeline,
    unregister_pass,
)

CFG = CompilerConfig(word_width=3, addr_width=3, heap_cells=5)


class TestPipelineSpecs:
    def test_presets_expand(self):
        assert canonical_pipeline("none") == "alloc,lower"
        assert canonical_pipeline("flatten") == "flatten,alloc,lower"
        assert canonical_pipeline("narrow") == "narrow,alloc,lower"
        assert canonical_pipeline("spire") == "flatten,narrow,alloc,lower"

    def test_preset_plus_gate_pass(self):
        assert (
            canonical_pipeline("spire+peephole")
            == "flatten,narrow,alloc,lower,peephole"
        )
        assert (
            canonical_pipeline("none", "zx-like")
            == "alloc,lower,zx-like"
        )

    def test_params_are_canonicalized_sorted(self):
        spec = canonical_pipeline(
            "none", "greedy-search", {"timeout": 1.0, "preprocess_only": True}
        )
        assert spec == (
            "alloc,lower,greedy-search(preprocess_only=true,timeout=1.0)"
        )
        # parsing the canonical form round-trips
        assert canonical_pipeline(spec) == spec

    def test_raw_spec_inserts_structural_passes(self):
        assert canonical_pipeline("flatten,narrow") == (
            "flatten,narrow,alloc,lower"
        )
        assert canonical_pipeline("flatten,peephole") == (
            "flatten,alloc,lower,peephole"
        )

    def test_param_parsing_types(self):
        pipe = resolve_pipeline("none+peephole(window=32)")
        assert pipe.gate_passes[-1].kwargs() == {"window": 32}
        pipe = resolve_pipeline(
            "none+greedy-search(preprocess_only=true,timeout=0.5)"
        )
        assert pipe.gate_passes[-1].kwargs() == {
            "preprocess_only": True,
            "timeout": 0.5,
        }

    def test_unknown_pass_rejected(self):
        with pytest.raises(PassError):
            resolve_pipeline("flatten,nonsense")

    def test_out_of_order_stages_rejected(self):
        with pytest.raises(PassError):
            Pipeline.parse("peephole,flatten,alloc,lower")

    def test_ir_pass_after_lower_rejected(self):
        with pytest.raises(PassError):
            Pipeline.parse("alloc,lower,flatten")

    def test_gate_pass_cannot_be_plus_prefixed_ir(self):
        with pytest.raises(PassError):
            resolve_pipeline("none+flatten")

    def test_gate_prefixes_longest_first(self):
        pipe = resolve_pipeline("spire+peephole+toffoli-cancel")
        specs = [p.spec() for p in pipe.gate_prefixes()]
        assert specs == [
            "flatten,narrow,alloc,lower,peephole",
            "flatten,narrow,alloc,lower",
        ]

    def test_ir_prefixes_grow(self):
        pipe = resolve_pipeline("spire")
        specs = [p.spec() for p in pipe.ir_prefixes()]
        assert specs == [
            "flatten,alloc,lower",
            "flatten,narrow,alloc,lower",
        ]


class TestRegistry:
    def test_expected_passes_registered(self):
        names = pass_names()
        for expected in (
            "flatten", "narrow", "alloc", "lower",
            "peephole", "rotation-merge", "toffoli-cancel", "zx-like",
            "greedy-search",
        ):
            assert expected in names

    def test_catalog_rows_are_described(self):
        for row in pass_catalog():
            assert row["stage"] in ("analyze", "ir", "lower", "gates")
            assert row["description"], row["name"]
            assert SEMANTICS_PRESERVING in row["invariants"], row["name"]


class TestPassManager:
    def test_fused_record_and_timings(self, length_source):
        cp = compile_source(length_source, "length", 3, CFG, "spire")
        names = [r.name for r in cp.pass_records]
        assert names == ["flatten+narrow", "alloc", "lower"]
        fused = cp.pass_records[0]
        assert fused.members == ("flatten", "narrow")
        assert set(cp.timings) == {
            "optimize", "typecheck", "lower_ir", "lower_gates"
        }

    def test_gate_pass_timings_recorded(self, length_source):
        cp = compile_source(length_source, "length", 3, CFG, "spire+peephole")
        assert "opt:peephole" in cp.timings
        assert cp.pass_records[-1].stage == "gates"
        assert cp.circuit.is_clifford_t()

    def test_snapshots_at_replayable_prefixes(self, length_source):
        cp = compile_source(
            length_source, "length", 3, CFG, "spire+peephole",
            keep_snapshots=True,
        )
        specs = [spec for spec, _ in cp.snapshots]
        assert specs == [
            "flatten,narrow,alloc,lower",
            "flatten,narrow,alloc,lower,peephole",
        ]
        # the post-lower snapshot is the MCX circuit, before the gate pass
        post_lower = cp.snapshots[0][1]
        assert post_lower.t_complexity() >= cp.circuit.t_count()

    def test_verify_passes_clean_pipeline(self, length_source):
        cp = compile_source(
            length_source, "length", 3, CFG, "spire+toffoli-cancel",
            verify=True,
        )
        gate_record = cp.pass_records[-1]
        assert "tcount_nonincreasing" in gate_record.verified
        assert "clifford_t_output" in gate_record.verified
        assert "preserves_types" in cp.pass_records[0].verified

    def test_verify_catches_type_breaking_ir_pass(self, length_source):
        @register_pass
        class _BreakTypes(Pass):
            """Test-only: references an unbound variable."""

            name = "test-break-types"
            stage = IR

            def apply(self, ctx):
                ctx.stmt = Seq(
                    (ctx.stmt, If("__unbound_cond", Seq(())))
                )

        try:
            with pytest.raises((PassVerificationError, ReproError)):
                compile_source(
                    length_source, "length", 2, CFG,
                    "test-break-types,alloc,lower", verify=True,
                )
        finally:
            unregister_pass("test-break-types")

    def test_verify_catches_tcount_raising_gate_pass(self, length_source):
        @register_pass
        class _RaiseT(Pass):
            """Test-only: appends T gates to the Clifford+T expansion."""

            name = "test-raise-t"
            stage = GATES
            invariants = frozenset(
                {"tcount_nonincreasing", "clifford_t_output"}
            )

            def apply(self, ctx):
                from repro.circuit import Circuit, t, to_clifford_t

                expanded = ctx.circuit
                if not expanded.is_clifford_t():
                    expanded = to_clifford_t(expanded)
                gates = list(expanded.gates) + [t(0), t(0)]
                ctx.circuit = Circuit(
                    expanded.num_qubits, gates, dict(expanded.registers)
                )

        try:
            with pytest.raises(PassVerificationError) as err:
                compile_source(
                    length_source, "length", 2, CFG,
                    "none+test-raise-t", verify=True,
                )
            assert err.value.pass_name == "test-raise-t"
            assert err.value.invariant == "tcount_nonincreasing"
        finally:
            unregister_pass("test-raise-t")

    def test_unverified_pipeline_skips_checks(self, length_source):
        cp = compile_source(length_source, "length", 2, CFG, "spire")
        assert all(not r.verified for r in cp.pass_records)


class TestCacheKeys:
    BASE = dict(
        source="fun f[n]() -> uint { let out <- 0; return out; }",
        entry="f",
        config=CFG,
        depth=3,
    )

    def test_param_difference_changes_key(self):
        # regression: two pipelines sharing an optimizer name but
        # differing in circopt params must never collide
        k1 = task_key(**self.BASE, optimizer="peephole", params={"window": 4})
        k2 = task_key(**self.BASE, optimizer="peephole", params={"window": 64})
        k3 = task_key(**self.BASE, optimizer="peephole")
        assert len({k1, k2, k3}) == 3

    def test_legacy_triple_equals_pipeline_spec(self):
        legacy = task_key(
            **self.BASE, optimization="spire", optimizer="peephole",
            params={"window": 8},
        )
        direct = task_key(
            **self.BASE,
            pipeline="flatten,narrow,alloc,lower,peephole(window=8)",
            kind="optimize",
        )
        assert legacy == direct

    def test_measure_and_optimize_kinds_never_collide(self):
        # the two row shapes (BenchmarkPoint vs OptimizerPoint) share a
        # canonical pipeline; the kind namespace keeps them apart
        measure = task_key(**self.BASE, optimization="none+peephole")
        optimize = task_key(
            **self.BASE, optimization="none", optimizer="peephole"
        )
        assert measure != optimize

    def test_measure_then_optimize_point_share_a_cache_dir(self, tmp_path):
        # regression: a pipeline measure and the equivalent optimizer
        # baseline in one cache directory must not poison each other's
        # row shape (previously a TypeError on replay)
        cache = ArtifactCache(tmp_path)
        runner = BenchmarkRunner(CFG, cache=cache)
        point = runner.measure("length", 2, "none+peephole")
        runner2 = BenchmarkRunner(CFG, cache=ArtifactCache(tmp_path))
        baseline = runner2.optimize_point("length", 2, "peephole", "none")
        assert baseline.t_count == point.t
        replayed = BenchmarkRunner(CFG, cache=ArtifactCache(tmp_path)).measure(
            "length", 2, "none+peephole"
        )
        assert replayed.cached and replayed.t == point.t

    def test_equivalent_spellings_share_a_key(self):
        assert task_key(**self.BASE, optimization="spire") == task_key(
            **self.BASE, optimization="flatten,narrow,alloc,lower"
        )

    def test_param_collision_regression_through_cache(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        runner = BenchmarkRunner(CFG, cache=cache)
        wide = runner.optimize_point("length", 2, "peephole", window=64)
        narrow = runner.optimize_point("length", 2, "peephole", window=1)
        assert not narrow.cached  # a key collision would replay `wide`
        runner2 = BenchmarkRunner(CFG, cache=ArtifactCache(tmp_path))
        replay = runner2.optimize_point("length", 2, "peephole", window=64)
        assert replay.cached and replay.t_count == wide.t_count


class TestPrefixReplay:
    def test_late_pass_edit_reuses_compile(self, tmp_path, monkeypatch):
        cache_a = ArtifactCache(tmp_path)
        cold = BenchmarkRunner(CFG, cache=cache_a).measure(
            "length", 3, "spire+peephole"
        )
        assert not cold.cached and not cold.prefix_cached

        # a different late pass must resume from the stored prefix
        # without compiling anything
        import repro.benchsuite.runner as runner_mod

        runner2 = BenchmarkRunner(CFG, cache=ArtifactCache(tmp_path))

        def _no_compile(*args, **kwargs):
            raise AssertionError("pipeline prefix should have replayed")

        direct = BenchmarkRunner(CFG).optimize_circuit(
            "length", 3, "toffoli-cancel", "spire"
        )
        monkeypatch.setattr(runner_mod, "compile_program", _no_compile)
        resumed = runner2.measure("length", 3, "spire+toffoli-cancel")
        monkeypatch.undo()
        assert resumed.prefix_cached == "flatten,narrow,alloc,lower"
        assert not resumed.cached
        # bit-identity with the direct (uncached) optimizer path
        assert resumed.t == direct.t_count

    def test_preset_measure_replays_synthesized_prefix(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        BenchmarkRunner(CFG, cache=cache).measure("length", 3, "spire+zx-like")
        # the post-lower prefix row equals a direct measure of the preset
        point = BenchmarkRunner(CFG, cache=ArtifactCache(tmp_path)).measure(
            "length", 3, "spire"
        )
        assert point.cached
        reference = BenchmarkRunner(CFG).measure("length", 3, "spire")
        assert (point.mcx, point.t, point.qubits) == (
            reference.mcx, reference.t, reference.qubits
        )
        assert (point.predicted_mcx, point.predicted_t) == (
            reference.predicted_mcx, reference.predicted_t
        )

    def test_full_pipeline_point_replays_warm(self, tmp_path):
        cache = ArtifactCache(tmp_path)
        cold = BenchmarkRunner(CFG, cache=cache).measure(
            "length", 2, "none+rotation-merge"
        )
        warm = BenchmarkRunner(CFG, cache=ArtifactCache(tmp_path)).measure(
            "length", 2, "none+rotation-merge"
        )
        assert warm.cached and warm.t == cold.t

    def test_measure_pipeline_equals_optimizer_baseline(self):
        runner = BenchmarkRunner(CFG)
        for optimizer in ("peephole", "toffoli-cancel", "zx-like"):
            point = runner.measure("length", 2, f"spire+{optimizer}")
            baseline = runner.optimize_point(
                "length", 2, optimizer, "spire"
            )
            assert point.t == baseline.t_count, optimizer


class TestBisection:
    #: heap_cells == 2**addr_width - 1 so random pointer inputs stay in
    #: the heap (the fuzz harness's config discipline)
    ORACLE_CFG = CompilerConfig(word_width=3, addr_width=3, heap_cells=7)

    def _broken_pass(self):
        @register_pass
        class _Unguard(Pass):
            """Test-only semantic defect: drops every if guard."""

            name = "test-unguard"
            stage = IR
            invariants = frozenset({SEMANTICS_PRESERVING})

            def apply(self, ctx):
                def strip(stmt):
                    if isinstance(stmt, If):
                        return strip(stmt.body)
                    if isinstance(stmt, Seq):
                        return Seq(tuple(strip(s) for s in stmt.stmts))
                    if hasattr(stmt, "setup"):  # With
                        from dataclasses import replace

                        return replace(
                            stmt,
                            setup=strip(stmt.setup),
                            body=strip(stmt.body),
                        )
                    return stmt

                ctx.stmt = strip(ctx.stmt)

        return _Unguard

    def test_failure_signature_names_offending_pass(self, length_source):
        from repro.fuzz.oracles import OracleConfig, OracleFailure, run_oracles
        from repro.lang.parser import parse_program

        self._broken_pass()
        try:
            cfg = OracleConfig(
                compiler=self.ORACLE_CFG,
                optimizations=(
                    "none", "flatten,test-unguard,alloc,lower"
                ),
                check_optimizers=False,
                check_statevector=False,
            )
            with pytest.raises(OracleFailure) as err:
                run_oracles(
                    parse_program(length_source), "length", 2, cfg,
                    input_seed=1,
                )
            assert err.value.oracle.endswith("@pass:test-unguard")
        finally:
            unregister_pass("test-unguard")

    def test_healthy_pipelines_have_no_pass_annotation(self, length_source):
        from repro.fuzz.oracles import OracleConfig, run_oracles
        from repro.lang.parser import parse_program

        cfg = OracleConfig(
            compiler=self.ORACLE_CFG,
            optimizations=("none", "spire"),
            check_optimizers=False,
            check_statevector=False,
        )
        stats = run_oracles(
            parse_program(length_source), "length", 2, cfg, input_seed=1
        )
        assert stats["t"] > 0


class TestPassesCli:
    def test_passes_list_smoke(self, capsys):
        assert main(["passes", "--list"]) == 0
        out = capsys.readouterr().out
        assert "flatten" in out and "stage=ir" in out
        assert "peephole" in out and "stage=gates" in out
        assert "tcount_nonincreasing" in out
        assert "spire" in out and "flatten,narrow,alloc,lower" in out

    def test_compile_pipeline_flag(self, tmp_path, length_source, capsys):
        path = tmp_path / "length.twr"
        path.write_text(length_source)
        assert main([
            "compile", str(path), "--entry", "length", "--size", "2",
            "--word-width", "3", "--addr-width", "3", "--heap-cells", "5",
            "--pipeline", "spire+peephole", "--verify-passes",
        ]) == 0
        out = capsys.readouterr().out
        assert "flatten,narrow,alloc,lower,peephole" in out
        assert "pass flatten+narrow" in out

    def test_bench_pipeline_prefix_replay(self, tmp_path, capsys):
        cache = str(tmp_path / "cache")
        out_dir = str(tmp_path / "arts")
        base = ["bench", "--cache-dir", cache, "--out", out_dir, "--quiet",
                "--benchmarks", "length", "--depths", "2..2"]
        assert main([*base, "--pipeline", "spire+peephole"]) == 0
        # edited late pass: every point must resume from the cached prefix
        assert main([
            *base, "--pipeline", "spire+toffoli-cancel", "--require-prefix",
        ]) == 0
        out = capsys.readouterr().out
        assert "resumed from a cached pipeline prefix" in out
        # and a verbatim re-run replays fully warm
        assert main([
            *base, "--pipeline", "spire+toffoli-cancel", "--require-cached",
        ]) == 0
