"""Contract tests for ``repro serve`` (the compilation service).

The server runs in-process (port 0, loopback) and is driven through the
real HTTP framing with the package's own :class:`~repro.serve.http.Client`
— the same stack ``repro loadgen`` uses.  The suite pins:

* the status contract: 200 clean / 422 program at fault / 400 request at
  fault / 404 / 405 / protocol-level 400;
* single-flight dedupe: N concurrent identical requests compile exactly
  once (monkeypatch-counted at ``compile_program``, and cross-checked
  against the server's own ``max_compiles_per_key`` gauge);
* bit-identical rows versus a clean serial no-server run;
* journal durability: a restarted server answers repeats from the
  journal without recompiling;
* the ``/metrics`` and ``/cache/stats`` payload shapes.
"""

from __future__ import annotations

import asyncio
import threading
from typing import Any, Dict, List, Optional, Tuple

import pytest

from repro.benchsuite import ArtifactCache
from repro.benchsuite.parallel import (
    MEASURE,
    GridTask,
    SerialBackend,
    stable_rows,
)
from repro.benchsuite.runner import BenchmarkRunner
from repro.config import TINY
from repro.fuzz.generator import fuzz_name
from repro.serve import Client, ReproServer, SingleFlight, inline_name
from repro.serve.loadgen import (
    INLINE_OK,
    INLINE_PARSE_ERROR,
    INLINE_TYPE_ERROR,
    build_traffic,
)
from repro.serve.metrics import Metrics, quantile


def _server(tmp_path=None, **kwargs) -> ReproServer:
    cache = ArtifactCache(tmp_path / "cache") if tmp_path else None
    return ReproServer(config=TINY, cache=cache, port=0, **kwargs)


# ------------------------------------------------------------ status contract
def test_status_contract(tmp_path):
    async def main() -> None:
        async with _server(tmp_path) as server:
            async with Client(server.host, server.port) as client:
                status, body = await client.get("/healthz")
                assert status == 200 and body["ok"] is True
                # health reports whether the compiled kernels are loaded
                from repro import _kernels

                assert body["compiled_kernels"] == _kernels.extension_available()

                status, body = await client.post(
                    "/lint", {"source": INLINE_OK}
                )
                assert status == 200 and body["exit_code"] == 0

                status, body = await client.post(
                    "/lint", {"source": INLINE_PARSE_ERROR}
                )
                assert status == 422 and body["exit_code"] == 1
                assert any(
                    d["code"] == "RPA001" for d in body["diagnostics"]
                )

                status, body = await client.post(
                    "/compile", {"source": INLINE_TYPE_ERROR}
                )
                assert status == 422 and body["admitted"] is False
                assert any(
                    d["code"] == "RPA002" for d in body["diagnostics"]
                )

                # request at fault: missing field, bad type, unknown name
                status, body = await client.post("/compile", {})
                assert status == 400 and "source" in body["error"]
                status, body = await client.post(
                    "/measure", {"name": "no-such-benchmark"}
                )
                assert status == 400 and "unknown benchmark" in body["error"]
                status, body = await client.post(
                    "/measure", {"name": 7}
                )
                assert status == 400
                status, body = await client.post(
                    "/measure",
                    {"name": "length", "optimizer": "definitely-not-real"},
                )
                assert status == 400 and "unknown optimizer" in body["error"]
                status, body = await client.request(
                    "POST", "/measure", payload=None
                )
                assert status == 400  # empty body: 'name' missing

                status, _ = await client.get("/no/such/endpoint")
                assert status == 404
                status, _ = await client.get("/compile")
                assert status == 405

    asyncio.run(main())


def test_malformed_frame_closes_with_400(tmp_path):
    async def main() -> None:
        async with _server(tmp_path) as server:
            reader, writer = await asyncio.open_connection(
                server.host, server.port
            )
            writer.write(b"this is not http\r\n\r\n")
            await writer.drain()
            status_line = await reader.readuntil(b"\r\n")
            assert b" 400 " in status_line
            # framing is unrecoverable: the server closes the connection
            rest = await reader.read()
            assert b"malformed request line" in rest
            writer.close()
            await writer.wait_closed()

    asyncio.run(main())


# ------------------------------------------------------- execution round trip
def test_compile_roundtrip_and_repeat_replay(tmp_path):
    async def main() -> None:
        async with _server(tmp_path) as server:
            async with Client(server.host, server.port) as client:
                status, body = await client.post(
                    "/compile", {"source": INLINE_OK}
                )
                assert status == 200
                row = body["row"]
                assert body["entry"] == "main"
                assert body["name"] == inline_name(INLINE_OK, "main")
                assert row["t"] >= 0 and not row.get("failed")

                # the same request again: answered from the completed map,
                # flagged as a replay, bit-identical
                status, again = await client.post(
                    "/compile", {"source": INLINE_OK}
                )
                assert status == 200
                assert again["row"]["journal_resumed"] is True
                assert stable_rows([again["row"]]) == stable_rows([row])

                status, metrics = await client.get("/metrics")
                assert metrics["counters"]["journal_replays"] == 1

    asyncio.run(main())


def test_journal_survives_restart(tmp_path):
    """A restarted server (same cache root) must not recompile."""
    payload = {"name": fuzz_name(7, 0), "optimization": "none"}

    async def first() -> Dict[str, Any]:
        async with _server(tmp_path) as server:
            async with Client(server.host, server.port) as client:
                status, body = await client.post("/measure", payload)
                assert status == 200
                return body["row"]

    async def second() -> Tuple[Dict[str, Any], Dict[str, Any]]:
        async with _server(tmp_path) as server:
            async with Client(server.host, server.port) as client:
                status, body = await client.post("/measure", payload)
                assert status == 200
                _, metrics = await client.get("/metrics")
                return body["row"], metrics

    row = asyncio.run(first())
    journal = tmp_path / "cache" / "journal" / "serve.jsonl"
    assert journal.exists() and journal.read_text().strip()

    replayed, metrics = asyncio.run(second())
    assert replayed["journal_resumed"] is True
    assert stable_rows([replayed]) == stable_rows([row])
    assert metrics["counters"].get("compile_executions") is None
    assert metrics["counters"]["journal_replays"] == 1

    asyncio.run(first())  # and the journal is still intact afterwards


# ------------------------------------------------------- single-flight dedupe
def test_concurrent_identical_requests_compile_once(tmp_path, monkeypatch):
    """8 clients x 3 distinct keys, all in flight together: each key
    compiles exactly once.  Counted two ways — a monkeypatch tap on
    ``compile_program`` (ground truth) and the server's own
    ``max_compiles_per_key`` gauge (what the loadgen asserts)."""
    import repro.benchsuite.runner as runner_mod

    compiles: List[str] = []
    real_compile = runner_mod.compile_program

    def counting_compile(program, entry, **kwargs):
        compiles.append(entry)
        return real_compile(program, entry, **kwargs)

    monkeypatch.setattr(runner_mod, "compile_program", counting_compile)

    names = [fuzz_name(11, index) for index in range(3)]

    async def main() -> None:
        # a longer batch window guarantees the duplicates are admitted
        # while the leader is still queued — the race the dedupe exists for
        async with _server(tmp_path, batch_window=0.1) as server:
            clients = [Client(server.host, server.port) for _ in range(8)]

            async def post(client: Client, name: str):
                return await client.post(
                    "/measure", {"name": name, "optimization": "none"}
                )

            try:
                results = await asyncio.gather(
                    *[
                        post(client, names[index % len(names)])
                        for index, client in enumerate(clients)
                    ]
                )
                rows = []
                for status, body in results:
                    assert status == 200
                    assert not body["row"].get("failed")
                    rows.append(body["row"])
                async with Client(server.host, server.port) as probe:
                    _, metrics = await probe.get("/metrics")
            finally:
                for client in clients:
                    await client.close()

        gauges = metrics["gauges"]
        assert gauges["max_compiles_per_key"] == 1
        assert gauges["distinct_keys"] == len(names)
        assert metrics["counters"]["dedupe_hits"] == 8 - len(names)
        # coalesced requests share the leader's row, bit for bit
        by_name: Dict[str, List[Dict[str, Any]]] = {}
        for row in rows:
            by_name.setdefault(row["name"], []).append(row)
        for group in by_name.values():
            first = stable_rows([group[0]])
            for row in group[1:]:
                assert stable_rows([row]) == first

    asyncio.run(main())
    assert len(compiles) == len(names)


def test_single_flight_unit():
    async def main() -> None:
        flight = SingleFlight()
        leader, future = flight.admit("k")
        assert leader and len(flight) == 1
        follower, same = flight.admit("k")
        assert not follower and same is future
        flight.resolve("k", {"t": 1})
        assert await future == {"t": 1}
        assert len(flight) == 0 and flight.coalesced == 1

        # after resolution the key opens a fresh flight
        leader, future = flight.admit("k")
        assert leader
        flight.reject("k", RuntimeError("boom"))
        with pytest.raises(RuntimeError):
            await future

    asyncio.run(main())


# -------------------------------------------------------- serial bit-identity
def test_rows_match_serial_no_server_baseline(tmp_path):
    """Rows served over HTTP (cache + journal + batching in play) must be
    bit-identical, modulo volatile keys, to a fresh serial run."""
    names = [fuzz_name(23, 0), fuzz_name(23, 1)]
    tasks = [GridTask(MEASURE, name, None, "none") for name in names]

    async def served() -> List[Dict[str, Any]]:
        async with _server(tmp_path) as server:
            rows = []
            async with Client(server.host, server.port) as client:
                for name in names:
                    status, body = await client.post(
                        "/measure", {"name": name, "optimization": "none"}
                    )
                    assert status == 200
                    rows.append(body["row"])
            return rows

    via_server = asyncio.run(served())
    baseline = SerialBackend().run(BenchmarkRunner(TINY), tasks)
    assert stable_rows(via_server) == stable_rows(baseline)


# ----------------------------------------------------------- metrics & stats
def test_metrics_and_cache_stats_shape(tmp_path):
    async def main() -> None:
        async with _server(tmp_path) as server:
            async with Client(server.host, server.port) as client:
                for _ in range(3):
                    await client.post("/lint", {"source": INLINE_OK})
                await client.post("/compile", {"source": INLINE_OK})
                await client.post("/compile", {"source": INLINE_PARSE_ERROR})

                _, metrics = await client.get("/metrics")
                lint = metrics["endpoints"]["lint"]
                assert lint["requests"] == 3 and lint["errors"] == 0
                for key in ("p50_seconds", "p99_seconds", "max_seconds"):
                    assert lint[key] >= 0.0
                compile_stats = metrics["endpoints"]["compile"]
                assert compile_stats["requests"] == 2
                assert compile_stats["errors"] == 1  # the 422
                assert metrics["counters"]["admission_rejects"] == 1
                gauges = metrics["gauges"]
                assert gauges["queue_depth"] == 0
                assert gauges["inflight_keys"] == 0
                assert gauges["completed_keys"] == 1

                _, stats = await client.get("/cache/stats")
                assert stats["cache"] == str(tmp_path / "cache")
                assert stats["usage"]["entries"] >= 1
                assert stats["usage"]["tmp_files"] == 0
                assert set(stats["stats"]) >= {"hits", "misses"}

    asyncio.run(main())


def test_quantiles_nearest_rank():
    samples = [float(value) for value in range(1, 102)]  # 1..101
    assert quantile(samples, 0.5) == 51.0  # the true median
    assert quantile(samples, 0.99) == 100.0
    assert quantile(samples, 1.0) == 101.0
    assert quantile(samples, 0.0) == 1.0
    assert quantile([3.0], 0.99) == 3.0
    assert quantile([], 0.5) is None

    metrics = Metrics()
    metrics.observe("x", 0.25, 200)
    metrics.observe("x", 0.75, 500)
    snap = metrics.snapshot()["endpoints"]["x"]
    assert snap["requests"] == 2 and snap["errors"] == 1
    assert snap["max_seconds"] == 0.75


# ------------------------------------------------------------------ lifecycle
def test_shutdown_endpoint_drains_and_refuses_new_connections(tmp_path):
    async def main() -> None:
        server = _server(tmp_path)
        await server.start()
        try:
            async with Client(server.host, server.port) as client:
                status, body = await client.post("/compile", {"source": INLINE_OK})
                assert status == 200
                status, body = await client.post("/shutdown", {})
                assert status == 200 and body["shutting_down"] is True
            async with Client(server.host, server.port) as late:
                status, body = await late.get("/healthz")
                assert status == 503
        finally:
            await server.close()
        # the journal closed clean: every line parses
        journal = tmp_path / "cache" / "journal" / "serve.jsonl"
        lines = journal.read_text().splitlines()
        assert len(lines) >= 2  # header + the compiled row
        import json

        for line in lines:
            json.loads(line)

    asyncio.run(main())


# ------------------------------------------------------------------- loadgen
def test_build_traffic_mix():
    requests = build_traffic([1], fuzz_count=4, fuzz_seed=3)
    by_path: Dict[str, int] = {}
    for request in requests:
        by_path[request["path"]] = by_path.get(request["path"], 0) + 1
    assert by_path["/measure"] == 6 + 4  # smoke grid + fuzz stream
    assert by_path["/compile"] == 3  # one clean, two admission rejects
    assert by_path["/lint"] == 1
    rejects = [r for r in requests if r["expect"] == "reject"]
    assert len(rejects) == 2
    assert all(r["path"] == "/compile" for r in rejects)
    # deterministic: the same seed builds the same traffic
    assert build_traffic([1], fuzz_count=4, fuzz_seed=3) == requests
