"""Tests for surface-to-core lowering and call inlining."""

import pytest

from repro.config import CompilerConfig
from repro.errors import InlineError, TypeCheckError
from repro.ir import Assign, If, Stmt, UnAssign, With, check_program, run_program
from repro.lang import lower_source

CFG = CompilerConfig(word_width=4, addr_width=3, heap_cells=5)


def lower(src, entry="main", size=None):
    low = lower_source(src, entry, size=size, config=CFG)
    check_program(low.stmt, low.table, low.param_types)
    return low


def run(src, entry="main", size=None, inputs=None):
    low = lower_source(src, entry, size=size, config=CFG)
    m = run_program(low.stmt, low.table, inputs=inputs or {}, input_types=low.param_types)
    return m.registers.get(low.return_var), m


class TestExpressions:
    def test_nested_expression_introduces_with(self):
        low = lower("fun main(a: bool, b: bool, c: bool) -> bool { let s <- a && b && c; return s; }")
        assert isinstance(low.stmt, With)

    def test_nested_expression_value(self):
        got, m = run(
            "fun main() -> uint { let a <- 2; let b <- 3; let s <- a + b * b; return s; }"
        )
        assert got == (2 + 9) % 16
        assert m.registers["%t1"] == 0  # temp uncomputed

    def test_constant_folding_if(self):
        low = lower("fun main() -> uint { if true { let s <- 1; } else { let s <- 2; } return s; }")
        got, _ = run("fun main() -> uint { if true { let s <- 1; } else { let s <- 2; } return s; }")
        assert got == 1

    def test_null_inference_via_comparison(self):
        src = """
        type list = (uint, ptr<list>);
        fun main(p: ptr<list>) -> bool { let e <- p == null; return e; }
        """
        got, _ = run(src, inputs={"p": 0})
        assert got == 1

    def test_bare_null_rejected(self):
        with pytest.raises(TypeCheckError):
            lower("fun main() -> uint { let x <- null; return x; }")

    def test_unbound_variable_rejected(self):
        with pytest.raises(TypeCheckError):
            lower("fun main() -> uint { let x <- y; return x; }")


class TestIfDesugaring:
    def test_if_else_produces_two_guarded_ifs(self):
        low = lower(
            "fun main(c: bool) -> uint { if c { let x <- 1; } else { let x <- 2; } return x; }"
        )
        ifs = [s for s in low.stmt.walk() if isinstance(s, If)]
        assert len(ifs) == 2

    def test_if_else_semantics(self):
        src = "fun main(c: bool) -> uint { if c { let x <- 1; } else { let x <- 2; } return x; }"
        assert run(src, inputs={"c": 1})[0] == 1
        assert run(src, inputs={"c": 0})[0] == 2

    def test_if_on_expression_condition(self):
        src = "fun main(a: uint) -> bool { if a == 3 { let x <- true; } return x; }"
        assert run(src, inputs={"a": 3})[0] == 1
        # untaken branch: the register was never written (reads as zero)
        assert (run(src, inputs={"a": 2})[0] or 0) == 0


class TestInlining:
    def test_helper_function_inlined(self):
        src = """
        fun double(a: uint) -> uint { let r <- a + a; return r; }
        fun main(x: uint) -> uint { let y <- double(x); return y; }
        """
        assert run(src, inputs={"x": 5})[0] == 10

    def test_recursion_bound_zero_yields_zero(self):
        src = """
        fun count[n](x: uint) -> uint {
          let one <- 1;
          with { let next <- x + one; } do { let r <- count[n-1](next); }
          let out <- r;
          return out;
        }
        fun main(x: uint) -> uint { let y <- count[0](x); return y; }
        """
        # count[0] is the zero function
        assert run(src, inputs={"x": 7})[0] == 0

    def test_bounded_recursion_unrolls(self):
        src = """
        fun sum_to[n](k: uint, acc: uint) -> uint {
          with { let done <- k == 0; } do
          if done { let out <- acc; }
          else with {
            let k2 <- k - 1;
            let acc2 <- acc + k;
          } do { let out <- sum_to[n-1](k2, acc2); }
          return out;
        }
        fun main(k: uint) -> uint { let y <- sum_to[5](k, 0); return y; }
        """
        assert run(src, inputs={"k": 4})[0] == 10

    def test_unbounded_recursion_rejected(self):
        src = """
        fun loop(x: uint) -> uint { let y <- loop(x); return y; }
        fun main(x: uint) -> uint { let y <- loop(x); return y; }
        """
        with pytest.raises(InlineError):
            lower(src)

    def test_missing_return_type_for_recursive_rejected(self):
        src = """
        fun f[n](x: uint) { let y <- f[n-1](x); return y; }
        fun main(x: uint) -> uint { let y <- f[2](x); return y; }
        """
        with pytest.raises(InlineError):
            lower(src)

    def test_arity_mismatch_rejected(self):
        src = """
        fun g(a: uint, b: uint) -> uint { let r <- a + b; return r; }
        fun main(x: uint) -> uint { let y <- g(x); return y; }
        """
        with pytest.raises(InlineError):
            lower(src)

    def test_argument_type_mismatch_rejected(self):
        src = """
        fun g(a: bool) -> bool { let r <- not a; return r; }
        fun main(x: uint) -> bool { let y <- g(x); return y; }
        """
        with pytest.raises(TypeCheckError):
            lower(src)

    def test_literal_argument_materialized(self):
        src = """
        fun inc(a: uint) -> uint { let r <- a + 1; return r; }
        fun main() -> uint { let y <- inc(4); return y; }
        """
        assert run(src)[0] == 5

    def test_returning_a_parameter_copies(self):
        src = """
        fun id(a: uint) -> uint { return a; }
        fun main(x: uint) -> uint { let y <- id(x); return y; }
        """
        assert run(src, inputs={"x": 9})[0] == 9

    def test_uncall_reverses_inlined_body(self):
        src = """
        fun inc(a: uint) -> uint { let r <- a + 1; return r; }
        fun main(x: uint) -> uint {
          let y <- inc(x);
          let z <- y;
          let y -> inc(x);
          return z;
        }
        """
        got, m = run(src, inputs={"x": 3})
        assert got == 4
        # y's register was uncomputed by the un-call
        assert all(
            value == 0
            for name, value in m.registers.items()
            if name not in ("x", "z")
        )

    def test_alpha_renaming_keeps_instances_separate(self):
        src = """
        fun mk(a: uint) -> uint { let local <- a + 1; return local; }
        fun main(x: uint) -> uint {
          let p <- mk(x);
          let q <- mk(p);
          let r <- p + q;
          return r;
        }
        """
        assert run(src, inputs={"x": 1})[0] == 5  # 2 + 3

    def test_size_arithmetic_through_calls(self):
        src = """
        fun depth[n]() -> uint {
          with { let one <- 1; } do { let sub <- depth[n-2](); }
          let out <- sub + 1;
          return out;
        }
        fun main() -> uint { let y <- depth[5](); return y; }
        """
        # n=5 -> 3 -> 1 -> (-1 <= 0: zero): 3 levels
        assert run(src)[0] == 3


class TestEntryValidation:
    def test_entry_requires_size_when_annotated(self, length_source):
        with pytest.raises(InlineError):
            lower_source(length_source, "length", size=None, config=CFG)

    def test_entry_size_must_be_positive(self, length_source):
        with pytest.raises(InlineError):
            lower_source(length_source, "length", size=0, config=CFG)

    def test_params_become_inputs(self, length_source):
        low = lower_source(length_source, "length", size=2, config=CFG)
        assert list(low.param_types) == ["xs", "acc"]
        assert low.return_var == "out"
