"""Print/parse round-trip property: pretty(s) re-parses to a structurally
equal, re-typecheckable core program, over Table-1 and generated programs."""

import pytest

from repro.config import CompilerConfig
from repro.benchsuite.programs import ENTRIES, SOURCES, TREE_BENCHMARKS, UNSIZED
from repro.fuzz.generator import GenConfig, generate_workload
from repro.fuzz.oracles import OracleConfig, oracle_config_for
from repro.ir.pretty import parse_pretty, pretty, render_expr, render_value
from repro.ir.core import (
    AtomE,
    BinOp,
    BoolV,
    Lit,
    Pair,
    Proj,
    PtrV,
    TupleV,
    UIntV,
    UnOp,
    UnitV,
    Var,
)
from repro.ir.typecheck import check_program
from repro.lang.desugar import lower_entry
from repro.lang.parser import parse_program
from repro.types import UINT, PtrT, TupleT

CFG = CompilerConfig(word_width=3, addr_width=3, heap_cells=5)


def assert_roundtrip(lowered):
    text = pretty(lowered.stmt)
    reparsed = parse_pretty(text)
    assert reparsed == lowered.stmt
    # the reparsed program typechecks under the same table/params
    check_program(reparsed, lowered.table, lowered.param_types)


@pytest.mark.parametrize("name", sorted(SOURCES))
def test_table1_programs_roundtrip(name):
    size = None if name in UNSIZED else (2 if name in TREE_BENCHMARKS else 3)
    lowered = lower_entry(parse_program(SOURCES[name]), ENTRIES[name], size, CFG)
    assert_roundtrip(lowered)


@pytest.mark.parametrize("seed", range(12))
@pytest.mark.parametrize(
    "gen",
    [
        GenConfig(),
        GenConfig(hadamard_prob=0.4),
        GenConfig(heap_shapes=True),
    ],
    ids=["plain", "hadamard", "heap-shapes"],
)
def test_generated_programs_roundtrip(seed, gen):
    cfg = oracle_config_for(gen, OracleConfig())
    workload = generate_workload(seed, gen, cfg.compiler)
    lowered = lower_entry(workload.program, "main", None, cfg.compiler)
    assert_roundtrip(lowered)


class TestValueSpellings:
    """The typed value spellings that plain Tower source cannot express."""

    def test_typed_null(self):
        value = PtrV(0, TupleT(UINT, PtrT(UINT)))
        assert render_value(value) == "null<(uint, ptr<uint>)>"

    def test_nonzero_pointer(self):
        assert render_value(PtrV(3, UINT)) == "ptr<uint>[3]"

    def test_tuple_value_distinct_from_pair_expr(self):
        value = Lit(TupleV(UIntV(1), UIntV(2)))
        pair = Pair(Lit(UIntV(1)), Lit(UIntV(2)))
        value_text = render_expr(AtomE(value))
        pair_text = render_expr(pair)
        assert value_text != pair_text
        from repro.ir.pretty import _Parser, _tokenize

        assert _Parser(_tokenize(value_text)).expr() == AtomE(value)
        assert _Parser(_tokenize(pair_text)).expr() == pair

    def test_unit_and_bool(self):
        assert render_value(UnitV()) == "()"
        assert render_value(BoolV(True)) == "true"

    def test_operator_expressions(self):
        exprs = [
            UnOp("not", Var("a")),
            UnOp("test", Var("p$1")),
            BinOp("<", Var("x"), Lit(UIntV(3))),
            BinOp("&&", Var("a"), Var("b")),
            Proj(2, Var("%t4")),
        ]
        from repro.ir.pretty import _Parser, _tokenize

        for expr in exprs:
            text = render_expr(expr)
            assert _Parser(_tokenize(text)).expr() == expr


def test_decorated_names_roundtrip():
    text = "let %t1 <- out$2_7 + 1;\nlet %t1 -> out$2_7 + 1;"
    stmt = parse_pretty(text)
    assert pretty(stmt) == text
