"""Cache integrity: checksums, corruption quarantine, eviction, I/O errors.

Property-based torn-write tests: *any* truncation, byte flip, or random
tail replacement of a stored artifact must be detected as corrupt (never
served as data, never crash the reader), quarantined, and recompute
cleanly — while the untouched artifact round-trips bit-exact.
"""

from __future__ import annotations

import json
import os

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.benchsuite import ArtifactCache
from repro.benchsuite.cache import CIRCUIT_MAGIC, POINT_FILE, CIRCUIT_FILE
from repro.circuit.circuit import Circuit
from repro.circuit.gates import Gate, GateKind

KEY = "ab" + "0" * 62
ROW = {"name": "length", "depth": 3, "optimization": "none", "t": 123}


def small_circuit() -> Circuit:
    return Circuit(
        3,
        [
            Gate(GateKind.MCX, (), (0,)),
            Gate(GateKind.MCX, (0,), (1,)),
            Gate(GateKind.MCX, (0, 1), (2,)),
        ],
    )


def entry_file(cache: ArtifactCache, name: str):
    return cache.root / KEY[:2] / KEY[2:] / name


# ------------------------------------------------------------- clean paths
def test_point_roundtrip_and_envelope(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store_point(KEY, ROW)
    envelope = json.loads(entry_file(cache, POINT_FILE).read_text())
    assert envelope["format"] == 2
    assert envelope["row"] == ROW
    assert len(envelope["sha256"]) == 64
    assert cache.load_point(KEY) == ROW
    assert cache.stats()["corrupt"] == 0


def test_circuit_roundtrip_and_envelope(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store_circuit(KEY, small_circuit())
    blob = entry_file(cache, CIRCUIT_FILE).read_bytes()
    assert blob.startswith(CIRCUIT_MAGIC)
    loaded = cache.load_circuit(KEY)
    assert loaded is not None
    assert loaded.gates == small_circuit().gates


# --------------------------------------------------------------- corruption
@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_any_point_corruption_is_quarantined(tmp_path_factory, data):
    tmp_path = tmp_path_factory.mktemp("cache")
    cache = ArtifactCache(tmp_path)
    cache.store_point(KEY, ROW)
    path = entry_file(cache, POINT_FILE)
    blob = bytearray(path.read_bytes())
    mode = data.draw(st.sampled_from(["truncate", "flip", "garbage-tail"]))
    if mode == "truncate":
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        blob = blob[:cut]
    elif mode == "flip":
        pos = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=255))
        blob[pos] ^= flip
    else:
        tail = data.draw(st.binary(min_size=1, max_size=64))
        keep = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        blob = blob[:keep] + tail
    path.write_bytes(bytes(blob))
    loaded = cache.load_point(KEY)
    if loaded is not None:
        # a flip inside the row that the checksum covers must be caught;
        # surviving reads may only come from mutations outside the row
        # payload semantics (e.g. JSON whitespace) — the row itself must
        # still be the one we stored
        assert loaded == ROW
    else:
        assert cache.misses + cache.corrupt >= 1
        # quarantined entries are never re-served
        assert cache.load_point(KEY) is None


@given(data=st.data())
@settings(max_examples=40, deadline=None)
def test_any_snapshot_corruption_is_detected(tmp_path_factory, data):
    tmp_path = tmp_path_factory.mktemp("cache")
    cache = ArtifactCache(tmp_path)
    cache.store_circuit(KEY, small_circuit())
    path = entry_file(cache, CIRCUIT_FILE)
    blob = bytearray(path.read_bytes())
    mode = data.draw(st.sampled_from(["truncate", "flip"]))
    if mode == "truncate":
        cut = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        mutated = bytes(blob[:cut])
    else:
        pos = data.draw(st.integers(min_value=0, max_value=len(blob) - 1))
        flip = data.draw(st.integers(min_value=1, max_value=255))
        blob[pos] ^= flip
        mutated = bytes(blob)
    path.write_bytes(mutated)
    assert cache.load_circuit(KEY) is None  # sha256 catches every mutation
    assert cache.corrupt == 1
    assert cache.quarantine_entries()


def test_corrupt_point_is_quarantined_for_postmortem(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store_point(KEY, ROW)
    entry_file(cache, POINT_FILE).write_bytes(b"\xff\xfe not json")
    assert cache.load_point(KEY) is None
    stats = cache.stats()
    assert stats["corrupt"] == 1 and stats["quarantined"] == 1
    (quarantined,) = cache.quarantine_entries()
    assert quarantined.name == f"{KEY}.{POINT_FILE}"
    # second read: the entry is gone, so it is a plain miss now
    assert cache.load_point(KEY) is None
    assert cache.stats()["misses"] == 1


def test_tampered_row_fails_checksum(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store_point(KEY, ROW)
    path = entry_file(cache, POINT_FILE)
    envelope = json.loads(path.read_text())
    envelope["row"]["t"] = 999  # silent bit-rot in the payload
    path.write_text(json.dumps(envelope))
    assert cache.load_point(KEY) is None
    assert cache.stats()["corrupt"] == 1


# --------------------------------------------------------------- I/O errors
def test_unreadable_entry_is_io_error_not_miss(tmp_path, monkeypatch):
    cache = ArtifactCache(tmp_path)
    cache.store_point(KEY, ROW)

    def denied(self):
        raise PermissionError("injected EACCES")

    monkeypatch.setattr(type(entry_file(cache, POINT_FILE)), "read_bytes", denied)
    assert cache.load_point(KEY) is None
    stats = cache.stats()
    assert stats["io_errors"] == 1
    assert stats["misses"] == 0  # never conflated
    assert stats["corrupt"] == 0


def test_missing_entry_is_a_plain_miss(tmp_path):
    cache = ArtifactCache(tmp_path)
    assert cache.load_point(KEY) is None
    assert cache.load_circuit(KEY) is None
    stats = cache.stats()
    assert stats["misses"] == 1
    assert stats["io_errors"] == 0 and stats["corrupt"] == 0


# ------------------------------------------------------------ clear / prune
def test_clear_prunes_fanout_dirs_and_counts_all_entries(tmp_path):
    cache = ArtifactCache(tmp_path)
    keys = [f"{i:02x}" + "0" * 62 for i in range(4)]
    for key in keys[:3]:
        cache.store_point(key, ROW)
    cache.store_circuit(keys[3], small_circuit())  # circuit-only entry
    assert cache.clear() == 4  # circuit-only entries count too
    leftovers = [p for p in cache.root.iterdir()]
    assert leftovers == []  # no empty two-char fanout dirs left behind


def test_clear_removes_quarantine(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store_point(KEY, ROW)
    entry_file(cache, POINT_FILE).write_bytes(b"junk{")
    cache.load_point(KEY)
    assert cache.quarantine_entries()
    cache.clear()
    assert cache.quarantine_entries() == []
    assert list(cache.root.iterdir()) == []


def test_usage_and_prune_evict_oldest_first(tmp_path):
    cache = ArtifactCache(tmp_path)
    keys = [f"{i:02x}" + "0" * 62 for i in range(5)]
    for i, key in enumerate(keys):
        cache.store_point(key, dict(ROW, t=i))
        entry = cache.root / key[:2] / key[2:]
        stamp = 1_000_000 + i
        os.utime(entry / POINT_FILE, (stamp, stamp))
    usage = cache.usage()
    assert usage["entries"] == 5 and usage["bytes"] > 0
    per_entry = usage["bytes"] // 5
    report = cache.prune(max_bytes=per_entry * 2)
    assert report["removed_entries"] == 3
    assert report["remaining_entries"] == 2
    # the two newest survive
    assert cache.load_point(keys[3]) == dict(ROW, t=3)
    assert cache.load_point(keys[4]) == dict(ROW, t=4)
    assert cache.load_point(keys[0]) is None
    assert cache.usage()["bytes"] <= per_entry * 2


def test_prune_noop_when_under_budget(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store_point(KEY, ROW)
    report = cache.prune(max_bytes=10**9)
    assert report["removed_entries"] == 0
    assert cache.load_point(KEY) == ROW
