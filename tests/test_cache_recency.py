"""Shared-cache recency and concurrency regressions.

Three historical bugs of :class:`~repro.benchsuite.cache.ArtifactCache`
under a long-running server:

* eviction was FIFO, not LRU — ``prune`` orders by mtime but loads never
  refreshed it, so a server's *hottest* entries (written first, read
  constantly) were evicted first;
* a writer crashing between ``mkstemp`` and ``os.replace`` stranded its
  ``.tmp-*`` staging file forever — invisible to ``usage()`` and never
  reclaimed;
* the hit/miss/corrupt counters were bare ``+=`` on ints — lost updates
  once concurrent requests share one instance — and ``/cache/stats``
  could only see the parent process's counters, not the worker fleet's.
"""

from __future__ import annotations

import json
import os
import threading
import time

from repro.benchsuite import ArtifactCache
from repro.benchsuite.cache import POINT_FILE, TMP_PREFIX

KEY_HOT = "aa" + "0" * 62
KEY_COLD = "bb" + "0" * 62
ROW = {"name": "length", "depth": 3, "optimization": "none", "t": 123}


def _entry_file(cache: ArtifactCache, key: str, name: str = POINT_FILE):
    return cache.root / key[:2] / key[2:] / name


def _set_mtime(path, when: float) -> None:
    os.utime(path, (when, when))


# ------------------------------------------------------------------ recency
def test_hit_refreshes_mtime(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store_point(KEY_HOT, ROW)
    path = _entry_file(cache, KEY_HOT)
    _set_mtime(path, time.time() - 3600)
    stale = path.stat().st_mtime
    assert cache.load_point(KEY_HOT) == ROW
    assert path.stat().st_mtime > stale


def test_prune_evicts_cold_not_hot(tmp_path):
    """The LRU regression: hot = written first but read since; cold =
    written later, never read.  FIFO eviction (the bug) would evict the
    hot entry; LRU must evict the cold one."""
    cache = ArtifactCache(tmp_path)
    cache.store_point(KEY_HOT, ROW)
    cache.store_point(KEY_COLD, dict(ROW, name="cold"))
    now = time.time()
    _set_mtime(_entry_file(cache, KEY_HOT), now - 7200)   # written long ago
    _set_mtime(_entry_file(cache, KEY_COLD), now - 3600)  # written later
    assert cache.load_point(KEY_HOT) == ROW  # ...but hot was just read
    report = cache.prune(max_bytes=_entry_file(cache, KEY_HOT).stat().st_size)
    assert report["removed_entries"] == 1
    assert cache.load_point(KEY_HOT) == ROW       # survived
    assert cache.load_point(KEY_COLD) is None     # evicted


def test_circuit_hits_also_refresh(tmp_path):
    from repro.circuit.circuit import Circuit
    from repro.circuit.gates import Gate, GateKind

    cache = ArtifactCache(tmp_path)
    circuit = Circuit(2, [Gate(GateKind.MCX, (0,), (1,))])
    cache.store_circuit(KEY_HOT, circuit)
    path = _entry_file(cache, KEY_HOT, "circuit.rqcs")
    _set_mtime(path, time.time() - 3600)
    stale = path.stat().st_mtime
    assert cache.load_circuit(KEY_HOT) is not None
    assert path.stat().st_mtime > stale


# ---------------------------------------------------------------- tmp sweep
def _strand_tmp(cache: ArtifactCache, key: str, age: float = 3600.0):
    """Plant a staging file as a crashed writer would leave it."""
    entry = cache.root / key[:2] / key[2:]
    entry.mkdir(parents=True, exist_ok=True)
    tmp = entry / f"{TMP_PREFIX}stranded"
    tmp.write_bytes(b"partial artifact")
    _set_mtime(tmp, time.time() - age)
    return tmp


def test_usage_counts_stranded_tmp_files_separately(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store_point(KEY_HOT, ROW)
    clean = cache.usage()
    assert clean["tmp_files"] == 0 and clean["tmp_bytes"] == 0
    _strand_tmp(cache, KEY_COLD)
    usage = cache.usage()
    assert usage["tmp_files"] == 1
    assert usage["tmp_bytes"] == len(b"partial artifact")
    # staging bytes are dead weight, never entry bytes
    assert usage["bytes"] == clean["bytes"]


def test_prune_sweeps_stale_tmp_and_empty_entry_dir(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store_point(KEY_HOT, ROW)
    tmp = _strand_tmp(cache, KEY_COLD)
    report = cache.prune(max_bytes=1 << 30)
    assert report["swept_tmp_files"] == 1
    assert not tmp.exists()
    # the stranded entry dir held nothing else: it must be gone too
    assert not tmp.parent.exists()
    assert not (cache.root / KEY_COLD[:2]).exists()
    assert cache.load_point(KEY_HOT) == ROW


def test_sweep_spares_young_tmp_files(tmp_path):
    """A live writer's in-progress staging file must never be yanked."""
    cache = ArtifactCache(tmp_path)
    tmp = _strand_tmp(cache, KEY_COLD, age=0.0)
    assert cache.sweep_tmp() == 0
    assert tmp.exists()
    assert cache.sweep_tmp(max_age=0.0) == 1  # unconditional (clear path)
    assert not tmp.exists()


def test_clear_sweeps_tmp_unconditionally(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store_point(KEY_HOT, ROW)
    tmp = _strand_tmp(cache, KEY_COLD, age=0.0)
    cache.clear()
    assert not tmp.exists()
    assert cache.usage() == {
        "entries": 0, "bytes": 0,
        "quarantine_entries": 0, "quarantine_bytes": 0,
        "tmp_files": 0, "tmp_bytes": 0,
    }


def test_interrupted_atomic_write_leaves_no_tmp_in_parent(tmp_path):
    """Parent-side exceptions in the staging window unlink the temp file
    (the stranding is specific to hard process death in workers)."""
    cache = ArtifactCache(tmp_path)

    class Boom(Exception):
        pass

    real_replace = os.replace

    def exploding_replace(src, dst):
        raise Boom()

    os.replace = exploding_replace
    try:
        try:
            cache.store_point(KEY_HOT, ROW)
        except Boom:
            pass
        else:  # pragma: no cover - the fault must surface
            raise AssertionError("store_point should have raised")
    finally:
        os.replace = real_replace
    assert cache.tmp_files() == []


# -------------------------------------------------------------- concurrency
def test_counters_are_thread_safe(tmp_path):
    """4 threads x 500 misses each: bare `+=` loses updates under the
    race; the locked counter must account for every one."""
    cache = ArtifactCache(tmp_path)
    threads = [
        threading.Thread(
            target=lambda: [
                cache.load_point("cc" + "0" * 62) for _ in range(500)
            ]
        )
        for _ in range(4)
    ]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    assert cache.misses == 2000


def test_publish_and_aggregate_stats(tmp_path):
    """Two instances sharing a root (as parent + worker do): the
    aggregate must sum the other publisher's counters with this
    instance's live ones, without double-counting its own file."""
    parent = ArtifactCache(tmp_path)
    worker = ArtifactCache(tmp_path)
    parent.store_point(KEY_HOT, ROW)
    assert parent.load_point(KEY_HOT) == ROW      # parent: 1 hit
    assert worker.load_point(KEY_COLD) is None    # worker: 1 miss
    worker.publish_stats()
    parent.publish_stats()  # own file must not double-count

    stats = parent.aggregated_stats()
    assert stats["hits"] == 1
    assert stats["misses"] == 1
    assert stats["publishers"] == 1  # the worker's file (not its own)
    assert stats["entries"] == 1

    payload = json.loads(
        next((tmp_path / "stats").glob("*.json")).read_text()
    )
    assert payload["pid"] == os.getpid()


def test_publish_is_cumulative_not_additive(tmp_path):
    """Republishing replaces the per-instance file; counts never inflate."""
    parent = ArtifactCache(tmp_path)
    worker = ArtifactCache(tmp_path)
    parent.store_point(KEY_HOT, ROW)
    for _ in range(3):
        assert worker.load_point(KEY_HOT) == ROW
        worker.publish_stats()
    assert parent.aggregated_stats()["hits"] == 3


def test_stats_and_journal_dirs_are_not_entries(tmp_path):
    cache = ArtifactCache(tmp_path)
    cache.store_point(KEY_HOT, ROW)
    cache.publish_stats()
    (tmp_path / "journal").mkdir()
    (tmp_path / "journal" / "serve.jsonl").write_text("{}\n")
    assert len(cache) == 1
    assert cache.usage()["entries"] == 1
    cache.prune(max_bytes=0)
    # pruning to zero removes entries but never the meta directories
    assert (tmp_path / "stats").is_dir()
    assert (tmp_path / "journal" / "serve.jsonl").exists()
    assert cache.usage()["entries"] == 0
