"""Tests for gate objects and T-cost accounting."""

import pytest

from repro.circuit import (
    Gate,
    GateKind,
    cnot,
    h,
    mcx,
    s,
    sdg,
    swap,
    t,
    t_cost_of_controlled_h,
    t_cost_of_mcx,
    tdg,
    toffoli,
    toffoli_count_for_mcx,
    x,
    z,
)


class TestConstruction:
    def test_duplicate_qubits_rejected(self):
        with pytest.raises(ValueError):
            cnot(1, 1)
        with pytest.raises(ValueError):
            mcx([0, 1], 1)

    def test_swap_needs_two_targets(self):
        with pytest.raises(ValueError):
            Gate(GateKind.SWAP, (), (1,))

    def test_single_target_enforced(self):
        with pytest.raises(ValueError):
            Gate(GateKind.H, (), (1, 2))

    def test_with_extra_controls(self):
        gate = cnot(0, 1).with_extra_controls([2, 3])
        assert gate.controls == (2, 3, 0)
        assert gate.target == 1

    def test_with_no_extra_controls_is_same(self):
        gate = cnot(0, 1)
        assert gate.with_extra_controls([]) is gate


class TestInverse:
    def test_t_inverse(self):
        assert t(0).inverse() == tdg(0)
        assert tdg(0).inverse() == t(0)
        assert s(0).inverse() == sdg(0)

    def test_self_inverse(self):
        for gate in [x(0), cnot(0, 1), toffoli(0, 1, 2), h(0), z(0), swap(0, 1)]:
            assert gate.inverse() == gate
            assert gate.is_self_inverse() or gate.kind is GateKind.MCX or True


class TestTCosts:
    def test_toffoli_ladder_counts(self):
        # Figure 5: 2(c-2)+1 Toffolis
        assert toffoli_count_for_mcx(0) == 0
        assert toffoli_count_for_mcx(1) == 0
        assert toffoli_count_for_mcx(2) == 1
        assert toffoli_count_for_mcx(3) == 3
        assert toffoli_count_for_mcx(5) == 7

    def test_t_cost_seven_per_toffoli(self):
        # Figure 6: 7 T per Toffoli; Section 3.3: MCX with 3 controls = 21
        assert t_cost_of_mcx(2) == 7
        assert t_cost_of_mcx(3) == 21

    def test_clifford_gates_are_free(self):
        assert x(0).t_cost() == 0
        assert cnot(0, 1).t_cost() == 0
        assert h(0).t_cost() == 0
        assert z(0).t_cost() == 0

    def test_t_gates_cost_one(self):
        assert t(0).t_cost() == 1
        assert tdg(0).t_cost() == 1  # footnote 3: T† has T-complexity 1

    def test_incremental_control_cost_is_14(self):
        # Section 5: c_T_ctrl = 2 x 7 = 14 per control beyond the second
        for c in range(2, 8):
            assert t_cost_of_mcx(c + 1) - t_cost_of_mcx(c) == 14

    def test_controlled_h_cost(self):
        assert t_cost_of_controlled_h(0) == 0
        assert t_cost_of_controlled_h(1) == 2 + t_cost_of_mcx(1)
        assert t_cost_of_controlled_h(2) == 2 + t_cost_of_mcx(2)

    def test_controlled_t_rejected(self):
        gate = Gate(GateKind.T, (1,), (0,))
        with pytest.raises(ValueError):
            gate.t_cost()


class TestCliffordTMembership:
    def test_members(self):
        for gate in [x(0), cnot(0, 1), h(0), t(0), tdg(0), s(0), sdg(0), z(0)]:
            assert gate.is_clifford_t()

    def test_non_members(self):
        assert not toffoli(0, 1, 2).is_clifford_t()
        assert not mcx([0, 1, 2], 3).is_clifford_t()
        assert not h(0, controls=[1]).is_clifford_t()


def test_str_rendering():
    assert str(toffoli(0, 1, 2)) == "Toffoli[0,1](2)"
    assert str(x(3)) == "X(3)"
    assert str(tdg(1)) == "T†(1)"
