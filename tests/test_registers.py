"""Register-allocation tests, including the Appendix D scenarios."""

import pytest

from repro.compiler.registers import RegisterAllocator
from repro.errors import AllocationError


class TestBasics:
    def test_sequential_allocation(self):
        alloc = RegisterAllocator(base_offset=10)
        a = alloc.declare("a", 3)
        b = alloc.declare("b", 2)
        assert (a.offset, a.width) == (10, 3)
        assert (b.offset, b.width) == (13, 2)
        assert alloc.region_end == 15

    def test_lookup(self):
        alloc = RegisterAllocator()
        alloc.declare("a", 2)
        assert alloc.lookup("a").width == 2
        with pytest.raises(AllocationError):
            alloc.lookup("zz")

    def test_redeclaration_returns_same_register(self):
        alloc = RegisterAllocator()
        a1 = alloc.declare("a", 2)
        a2 = alloc.declare("a", 2)
        assert a1 == a2

    def test_redeclaration_width_mismatch_rejected(self):
        alloc = RegisterAllocator()
        alloc.declare("a", 2)
        with pytest.raises(AllocationError):
            alloc.declare("a", 3)

    def test_unassign_unbound_rejected(self):
        alloc = RegisterAllocator()
        with pytest.raises(AllocationError):
            alloc.unassign("a")


class TestPoolReuse:
    def test_same_scope_free_returns_to_pool(self):
        # Figure 23b: x freed inside the same scope; y may reuse r1.
        alloc = RegisterAllocator()
        scope = alloc.enter_scope()
        x = alloc.declare("x", 4)
        alloc.unassign("x")
        y = alloc.declare("y", 4)
        assert y.offset == x.offset  # aggressive reuse is legal here

    def test_cross_scope_free_is_reserved(self):
        # Figure 23d: x declared outside, un-assigned under control; its
        # register must NOT go to the pool.
        alloc = RegisterAllocator()
        x = alloc.declare("x", 4)
        alloc.enter_scope()
        alloc.unassign("x")
        y = alloc.declare("y", 4)
        assert y.offset != x.offset

    def test_reserved_register_returns_on_redeclaration(self):
        # Appendix D: the same name must get the same register back.
        alloc = RegisterAllocator()
        x = alloc.declare("x", 4)
        alloc.enter_scope()
        alloc.unassign("x")
        x2 = alloc.declare("x", 4)
        assert x2.offset == x.offset
        assert alloc.stats.reserved_reuses == 1

    def test_pool_matches_width(self):
        alloc = RegisterAllocator()
        alloc.declare("a", 4)
        alloc.unassign("a")
        b = alloc.declare("b", 2)  # narrower: no reuse of the 4-bit slot
        assert b.offset == 4

    def test_exit_scope_underflow_rejected(self):
        alloc = RegisterAllocator()
        with pytest.raises(AllocationError):
            alloc.exit_scope()


class TestMultiBinding:
    def test_guarded_redeclaration_unassigns_twice(self):
        alloc = RegisterAllocator()
        fu = alloc.declare("fu", 1)
        alloc.enter_scope()
        assert alloc.declare("fu", 1) == fu  # guarded re-declaration
        alloc.unassign("fu")  # reversal, inner binding
        assert alloc.lookup("fu") == fu  # still live
        alloc.exit_scope()
        alloc.unassign("fu")  # reversal, outer binding
        with pytest.raises(AllocationError):
            alloc.unassign("fu")

    def test_final_registers_include_reserved(self):
        alloc = RegisterAllocator()
        alloc.declare("x", 2)
        alloc.enter_scope()
        alloc.unassign("x")
        alloc.exit_scope()
        assert "x" in alloc.final_registers()


class TestScopes:
    def test_scope_instances_are_unique(self):
        alloc = RegisterAllocator()
        s1 = alloc.enter_scope()
        alloc.exit_scope()
        s2 = alloc.enter_scope()
        assert s1 != s2

    def test_sibling_scopes_do_not_pool_each_other(self):
        # declared in scope A, un-assigned in sibling scope B: reserved.
        alloc = RegisterAllocator()
        alloc.enter_scope()
        x = alloc.declare("x", 4)
        alloc.exit_scope()
        alloc.enter_scope()
        alloc.unassign("x")
        y = alloc.declare("y", 4)
        assert y.offset != x.offset
        alloc.exit_scope()
