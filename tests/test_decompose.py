"""Decomposition correctness: Figures 5 and 6, verified by statevector."""

import numpy as np
import pytest

from repro.circuit import (
    Circuit,
    GateKind,
    cnot,
    h,
    mcx,
    t_cost_of_mcx,
    to_clifford_t,
    to_toffoli,
    toffoli,
)
from repro.circuit.decompose import (
    decompose_toffoli_to_clifford_t,
    expanded_t_count,
)
from repro.circuit.statevector import (
    circuits_equivalent,
    equivalent_on_clean_ancillas,
    unitaries_equal,
    unitary,
)


class TestToffoliDecomposition:
    def test_seven_t_gates(self):
        gates = decompose_toffoli_to_clifford_t(toffoli(0, 1, 2))
        t_gates = [g for g in gates if g.kind in (GateKind.T, GateKind.TDG)]
        assert len(t_gates) == 7

    def test_unitary_equals_toffoli(self):
        reference = Circuit(3, [toffoli(0, 1, 2)])
        decomposed = Circuit(3, decompose_toffoli_to_clifford_t(toffoli(0, 1, 2)))
        assert circuits_equivalent(reference, decomposed)

    def test_rejects_non_toffoli(self):
        from repro.errors import LoweringError

        with pytest.raises(LoweringError):
            decompose_toffoli_to_clifford_t(cnot(0, 1))


class TestMCXLadder:
    @pytest.mark.parametrize("controls", [3, 4, 5])
    def test_ladder_unitary_matches_mcx(self, controls):
        gate = mcx(range(controls), controls)
        reference = Circuit(controls + 1, [gate])
        expanded = to_toffoli(reference)
        # ancillas (above controls+1) start clean and must end clean
        assert equivalent_on_clean_ancillas(reference, expanded)

    @pytest.mark.parametrize("controls", [2, 3, 4, 5])
    def test_toffoli_count_matches_figure5(self, controls):
        gate = mcx(range(controls), controls)
        expanded = to_toffoli(Circuit(controls + 1, [gate]))
        toffolis = [g for g in expanded if len(g.controls) == 2]
        assert len(toffolis) == 2 * (controls - 2) + 1 if controls > 2 else 1

    def test_cnot_and_x_pass_through(self):
        circ = Circuit(2, [cnot(0, 1)])
        assert to_toffoli(circ).gates == [cnot(0, 1)]


class TestControlledH:
    def test_ch_unitary(self):
        reference = Circuit(2, [h(1, controls=[0])])
        expanded = to_clifford_t(reference)
        assert expanded.is_clifford_t()
        assert circuits_equivalent(reference, expanded)

    def test_cch_unitary(self):
        reference = Circuit(3, [h(2, controls=[0, 1])])
        expanded = to_clifford_t(reference)
        assert expanded.is_clifford_t()
        assert circuits_equivalent(reference, expanded)

    def test_plain_h_untouched(self):
        circ = Circuit(1, [h(0)])
        assert to_clifford_t(circ).gates == [h(0)]


class TestFullPipeline:
    @pytest.mark.parametrize("controls", [0, 1, 2, 3, 4, 5, 6])
    def test_t_count_matches_analytic_cost(self, controls):
        gate = mcx(range(controls), controls)
        circ = Circuit(controls + 1, [gate])
        assert expanded_t_count(circ) == t_cost_of_mcx(controls)
        assert circ.t_complexity() == t_cost_of_mcx(controls)

    def test_mixed_circuit_t_complexity_matches_expansion(self):
        circ = Circuit(
            5,
            [
                mcx([0, 1, 2], 3),
                cnot(0, 4),
                h(2, controls=[0]),
                toffoli(1, 2, 4),
            ],
        )
        assert to_clifford_t(circ).t_count() == circ.t_complexity()

    def test_clifford_t_output_is_clifford_t(self):
        circ = Circuit(5, [mcx([0, 1, 2, 3], 4)])
        assert to_clifford_t(circ).is_clifford_t()

    def test_ancillas_shared_across_gates(self):
        one = to_toffoli(Circuit(5, [mcx([0, 1, 2, 3], 4)]))
        two = to_toffoli(Circuit(5, [mcx([0, 1, 2, 3], 4)] * 2))
        assert two.num_qubits == one.num_qubits

    def test_semantic_equivalence_of_sequences(self):
        # two different MCX gates in sequence survive full decomposition
        circ = Circuit(4, [mcx([0, 1], 2), mcx([0, 1, 2], 3)])
        assert equivalent_on_clean_ancillas(circ, to_clifford_t(circ))
