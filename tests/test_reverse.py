"""Tests for the reversal operator I[s] and with-expansion."""

from repro.ir import (
    Assign,
    AtomE,
    Hadamard,
    If,
    Lit,
    MemSwap,
    Seq,
    Skip,
    Swap,
    UIntV,
    UnAssign,
    Var,
    With,
    expand_with,
    reverse,
    seq,
)

ASSIGN = Assign("x", AtomE(Lit(UIntV(1))))
UNASSIGN = UnAssign("x", AtomE(Lit(UIntV(1))))


class TestReverse:
    def test_assign_unassign_flip(self):
        assert reverse(ASSIGN) == UNASSIGN
        assert reverse(UNASSIGN) == ASSIGN

    def test_seq_reverses_order(self):
        s = Seq((ASSIGN, Hadamard("y")))
        assert reverse(s) == Seq((Hadamard("y"), UNASSIGN))

    def test_if_reverses_body(self):
        assert reverse(If("c", ASSIGN)) == If("c", UNASSIGN)

    def test_self_inverse_statements(self):
        for s in [Skip(), Hadamard("x"), Swap("a", "b"), MemSwap("p", "v")]:
            assert reverse(s) == s

    def test_with_reverses_body_only(self):
        s = With(ASSIGN, Hadamard("y"))
        assert reverse(s) == With(ASSIGN, Hadamard("y"))
        s2 = With(ASSIGN, Assign("z", AtomE(Var("x"))))
        assert reverse(s2).body == UnAssign("z", AtomE(Var("x")))

    def test_double_reverse_is_identity(self):
        s = With(ASSIGN, seq(If("c", Hadamard("y")), Swap("a", "b")))
        assert reverse(reverse(s)) == s


class TestExpandWith:
    def test_expansion_shape(self):
        s = With(ASSIGN, Hadamard("y"))
        expanded = expand_with(s)
        assert expanded == seq(ASSIGN, Hadamard("y"), UNASSIGN)

    def test_nested_with(self):
        inner = With(Assign("t", AtomE(Lit(UIntV(2)))), Hadamard("y"))
        s = With(ASSIGN, inner)
        expanded = expand_with(s)
        # s1; (s1'; s2'; I[s1']); I[s1]
        assert isinstance(expanded, Seq)
        assert len(expanded.stmts) == 5

    def test_expansion_inside_if(self):
        s = If("c", With(ASSIGN, Hadamard("y")))
        expanded = expand_with(s)
        assert expanded == If("c", seq(ASSIGN, Hadamard("y"), UNASSIGN))

    def test_no_with_is_identity(self):
        s = seq(ASSIGN, Hadamard("y"))
        assert expand_with(s) == s
