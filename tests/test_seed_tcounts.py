"""The vectorized optimizers must reproduce the seed T-counts exactly.

``tests/data/seed_tcounts.json`` records, for every (benchmark, depth,
optimizer) triple in the trimmed depth range, the T-count the pure-Python
seed implementations produced before the gate-stream rewrite.  The packed
hot paths are required to be semantics-preserving *and* emission-preserving,
so every triple must still come out bit-for-bit identical.

``greedy-search`` is recorded in ``preprocess_only`` mode: its full search
loop is wall-clock bounded and therefore not deterministic across machines.

Triples whose recorded T-count exceeds :data:`SLOW_THRESHOLD` carry the
``slow`` marker (their Clifford+T expansions dominate the suite's wall
time); CI runs them in a separate parallel tier while the fast tier keeps
every (benchmark, optimizer) pair covered at small depth.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.benchsuite import BenchmarkRunner
from repro.config import CompilerConfig

DATA = pathlib.Path(__file__).resolve().parent / "data" / "seed_tcounts.json"
SEED = json.loads(DATA.read_text())

assert SEED["greedy_search_mode"] == "preprocess_only"

_RUNNER = None


def _runner() -> BenchmarkRunner:
    global _RUNNER
    if _RUNNER is None:
        _RUNNER = BenchmarkRunner(CompilerConfig(**SEED["config"]))
    return _RUNNER


SLOW_THRESHOLD = 20000


def _case(key: str):
    marks = [pytest.mark.slow] if SEED["counts"][key] > SLOW_THRESHOLD else []
    return pytest.param(key, marks=marks, id=key)


@pytest.mark.parametrize("key", [_case(key) for key in sorted(SEED["counts"])])
def test_t_count_matches_seed(key):
    name, depth, optimizer = key.split("|")
    kwargs = {"preprocess_only": True} if optimizer == "greedy-search" else {}
    result = _runner().optimize_circuit(
        name, None if depth == "None" else int(depth), optimizer, **kwargs
    )
    assert result.t_count == SEED["counts"][key], key
