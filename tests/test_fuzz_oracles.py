"""Corpus replay and oracle-harness tests.

The fast tier replays the deterministic corpus (``tests/corpus``) on every
run: the seed manifest drives the generator and the checked-in reproducers
guard fixed defects.  Long fresh-seed sweeps are gated behind ``-m fuzz``.
"""

from pathlib import Path

import pytest

from repro.fuzz import (
    GenConfig,
    OracleConfig,
    check_generated,
    load_corpus,
    replay_case,
)
from repro.fuzz.corpus import CorpusCase, load_seed_manifest, save_case
from repro.fuzz.oracles import OracleFailure, run_oracles
from repro.lang.parser import parse_program

CORPUS = Path(__file__).parent / "corpus"

#: fast replay settings: the full oracle stack minus the optimizer sweep
FAST = OracleConfig(n_inputs=2, check_optimizers=False)
#: complete oracle stack (optimizer baselines included)
FULL = OracleConfig(n_inputs=2)


def seed_entries():
    return load_seed_manifest(CORPUS / "seeds.json")


@pytest.mark.parametrize(
    "seed,gen", seed_entries(), ids=[f"seed{s}" for s, _ in seed_entries()]
)
def test_corpus_seed_replay(seed, gen):
    report = check_generated(seed, gen, FAST)
    assert report.ok, f"{report.oracle}: {report.message}\n{report.source}"


@pytest.mark.parametrize("seed", [0, 5, 11, 203])
def test_corpus_seed_replay_full_oracles(seed):
    report = check_generated(seed, GenConfig(), FULL)
    assert report.ok, f"{report.oracle}: {report.message}\n{report.source}"


def test_corpus_cases_replay():
    cases = load_corpus(CORPUS / "cases")
    assert cases, "the reproducer corpus must not be empty"
    for case in cases:
        stats = replay_case(case, FULL)
        assert stats["qubits"] > 0


def test_corpus_case_roundtrip(tmp_path):
    case = CorpusCase(
        name="example",
        source="fun main(x: uint) -> uint {\n  let y <- x;\n  return y;\n}\n",
        oracle=None,
        description="round-trip fixture",
    )
    path = save_case(case, tmp_path)
    loaded = load_corpus(tmp_path)
    assert path.name == "example.json"
    assert loaded == [case]
    replay_case(case, FAST)


class TestOracleHarness:
    def test_detects_optimizer_semantics_bug(self, monkeypatch):
        """A deliberately broken optimizer must be caught by the oracles."""
        from repro.circopt import cancel as cancel_mod
        from repro.circuit.circuit import Circuit
        from repro.circuit.gates import x as x_gate

        real_run = cancel_mod.CliffordTPeephole.run

        def broken(self, circuit):
            result = real_run(self, circuit)
            broken_gates = list(result.gates) + [x_gate(0)]
            out = Circuit(result.num_qubits, broken_gates)
            out.registers = result.registers
            return out

        monkeypatch.setattr(cancel_mod.CliffordTPeephole, "run", broken)
        program = parse_program(
            "fun main(x: uint) -> uint {\n  let y <- x + 1;\n  return y;\n}\n"
        )
        with pytest.raises(OracleFailure) as info:
            run_oracles(program, "main", None, FULL, input_seed=0)
        assert "peephole" in info.value.oracle

    def test_detects_cost_model_mismatch(self, monkeypatch):
        from repro.fuzz import oracles as oracles_mod

        real = oracles_mod.exact_counts

        def skewed(*args, **kwargs):
            mcx, t = real(*args, **kwargs)
            return mcx + 1, t

        monkeypatch.setattr(oracles_mod, "exact_counts", skewed)
        program = parse_program(
            "fun main(x: uint) -> uint {\n  let y <- x + 1;\n  return y;\n}\n"
        )
        with pytest.raises(OracleFailure) as info:
            run_oracles(program, "main", None, FAST, input_seed=0)
        assert info.value.oracle.startswith("cost-exact")

    def test_report_contains_source_on_failure(self, monkeypatch):
        from repro.fuzz import oracles as oracles_mod

        def boom(*args, **kwargs):
            raise OracleFailure("synthetic", "boom")

        monkeypatch.setattr(oracles_mod, "run_oracles", boom)
        report = check_generated(0, GenConfig(), FAST)
        assert not report.ok
        assert report.oracle == "synthetic"
        assert "fun main" in report.source


@pytest.mark.fuzz
@pytest.mark.parametrize("block", range(6))
def test_fresh_seed_sweep(block):
    """Budgeted fresh-seed run (full oracles); gated behind ``-m fuzz``."""
    base = 1_000 + 25 * block
    for seed in range(base, base + 25):
        report = check_generated(seed, GenConfig(), OracleConfig())
        assert report.ok, (
            f"seed {seed} {report.oracle}: {report.message}\n{report.source}"
        )
