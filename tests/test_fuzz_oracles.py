"""Corpus replay and oracle-harness tests.

The fast tier replays the deterministic corpus (``tests/corpus``) on every
run: the seed manifest drives the generator and the checked-in reproducers
guard fixed defects.  Long fresh-seed sweeps are gated behind ``-m fuzz``.
"""

from pathlib import Path

import pytest

from repro.fuzz import (
    GenConfig,
    OracleConfig,
    check_generated,
    load_corpus,
    replay_case,
)
from repro.fuzz.corpus import CorpusCase, load_seed_manifest, save_case
from repro.fuzz.oracles import OracleFailure, run_oracles
from repro.lang.parser import parse_program

CORPUS = Path(__file__).parent / "corpus"

#: fast replay settings: the full oracle stack minus the optimizer sweep
FAST = OracleConfig(n_inputs=2, check_optimizers=False)
#: complete oracle stack (optimizer baselines included)
FULL = OracleConfig(n_inputs=2)


def seed_entries():
    return load_seed_manifest(CORPUS / "seeds.json")


@pytest.mark.parametrize(
    "seed,gen", seed_entries(), ids=[f"seed{s}" for s, _ in seed_entries()]
)
def test_corpus_seed_replay(seed, gen):
    report = check_generated(seed, gen, FAST)
    assert report.ok, f"{report.oracle}: {report.message}\n{report.source}"


@pytest.mark.parametrize("seed", [0, 5, 11, 203])
def test_corpus_seed_replay_full_oracles(seed):
    report = check_generated(seed, GenConfig(), FULL)
    assert report.ok, f"{report.oracle}: {report.message}\n{report.source}"


def test_corpus_cases_replay():
    cases = load_corpus(CORPUS / "cases")
    assert cases, "the reproducer corpus must not be empty"
    for case in cases:
        stats = replay_case(case, FULL)
        assert stats["qubits"] > 0


def test_corpus_case_roundtrip(tmp_path):
    case = CorpusCase(
        name="example",
        source="fun main(x: uint) -> uint {\n  let y <- x;\n  return y;\n}\n",
        oracle=None,
        description="round-trip fixture",
    )
    path = save_case(case, tmp_path)
    loaded = load_corpus(tmp_path)
    assert path.name == "example.json"
    assert loaded == [case]
    replay_case(case, FAST)


class TestOracleHarness:
    def test_detects_optimizer_semantics_bug(self, monkeypatch):
        """A deliberately broken optimizer must be caught by the oracles."""
        from repro.circopt import cancel as cancel_mod
        from repro.circuit.circuit import Circuit
        from repro.circuit.gates import x as x_gate

        real_run = cancel_mod.CliffordTPeephole.run

        def broken(self, circuit):
            result = real_run(self, circuit)
            broken_gates = list(result.gates) + [x_gate(0)]
            out = Circuit(result.num_qubits, broken_gates)
            out.registers = result.registers
            return out

        monkeypatch.setattr(cancel_mod.CliffordTPeephole, "run", broken)
        program = parse_program(
            "fun main(x: uint) -> uint {\n  let y <- x + 1;\n  return y;\n}\n"
        )
        with pytest.raises(OracleFailure) as info:
            run_oracles(program, "main", None, FULL, input_seed=0)
        assert "peephole" in info.value.oracle

    def test_detects_cost_model_mismatch(self, monkeypatch):
        from repro.fuzz import oracles as oracles_mod

        real = oracles_mod.exact_counts

        def skewed(*args, **kwargs):
            mcx, t = real(*args, **kwargs)
            return mcx + 1, t

        monkeypatch.setattr(oracles_mod, "exact_counts", skewed)
        program = parse_program(
            "fun main(x: uint) -> uint {\n  let y <- x + 1;\n  return y;\n}\n"
        )
        with pytest.raises(OracleFailure) as info:
            run_oracles(program, "main", None, FAST, input_seed=0)
        assert info.value.oracle.startswith("cost-exact")

    def test_report_contains_source_on_failure(self, monkeypatch):
        from repro.fuzz import oracles as oracles_mod

        def boom(*args, **kwargs):
            raise OracleFailure("synthetic", "boom")

        monkeypatch.setattr(oracles_mod, "run_oracles", boom)
        report = check_generated(0, GenConfig(), FAST)
        assert not report.ok
        assert report.oracle == "synthetic"
        assert "fun main" in report.source


class TestOptimizerSizeCap:
    """Size-tiered optimizer effort: deterministic, logged, overridable."""

    SRC = "fun main(x: uint) -> uint {\n  let y <- x * x;\n  return y;\n}\n"

    def test_oversized_program_skips_baselines(self):
        from dataclasses import replace

        cfg = replace(FULL, optimizer_t_cap=0)
        stats = run_oracles(parse_program(self.SRC), "main", None, cfg,
                            input_seed=0)
        assert stats["optimizers_skipped"] == stats["t_clifford"] > 0
        assert not any(key.startswith("t_peephole") for key in stats)

    def test_uncapped_runs_every_baseline(self):
        from dataclasses import replace

        cfg = replace(FULL, optimizer_t_cap=None)
        stats = run_oracles(parse_program(self.SRC), "main", None, cfg,
                            input_seed=0)
        assert "optimizers_skipped" not in stats
        for name in cfg.optimizers:
            assert f"t_{name}" in stats

    def test_full_sim_cap_reduces_inputs_not_baselines(self):
        from dataclasses import replace

        cfg = replace(FULL, optimizer_full_sim_t_cap=0)
        stats = run_oracles(parse_program(self.SRC), "main", None, cfg,
                            input_seed=0)
        assert stats["optimizer_inputs"] == 1
        for name in cfg.optimizers:
            assert f"t_{name}" in stats

    def test_default_cap_keeps_small_programs_fully_checked(self):
        stats = run_oracles(parse_program(self.SRC), "main", None, FULL,
                            input_seed=0)
        assert stats["optimizer_inputs"] == FULL.n_inputs
        assert "optimizers_skipped" not in stats


@pytest.mark.fuzz
@pytest.mark.parametrize("block", range(6))
def test_fresh_seed_sweep(block):
    """Budgeted fresh-seed run (full oracles); gated behind ``-m fuzz``."""
    base = 1_000 + 25 * block
    for seed in range(base, base + 25):
        report = check_generated(seed, GenConfig(), OracleConfig())
        assert report.ok, (
            f"seed {seed} {report.oracle}: {report.message}\n{report.source}"
        )


SUPERPOSED_SRC = "fun main(x: bool) -> bool {\n  H(x);\n  return x;\n}\n"
CONTROLLED_H_SRC = (
    "fun main(c: bool, x: bool) -> bool {\n"
    "  if c {\n    H(x);\n  }\n  return x;\n}\n"
)


class TestAmplitudeOracles:
    """The statevector-only oracle path for programs in superposition."""

    def test_superposed_program_passes_and_reports(self):
        stats = run_oracles(
            parse_program(SUPERPOSED_SRC), "main", None, FULL, input_seed=0
        )
        assert stats["superposed"] is True
        assert stats["max_branches"] >= 2

    def test_controlled_hadamard_passes(self):
        stats = run_oracles(
            parse_program(CONTROLLED_H_SRC), "main", None, FULL, input_seed=0
        )
        assert stats["superposed"] is True

    def test_classical_program_not_superposed(self):
        stats = run_oracles(
            parse_program(
                "fun main(x: uint) -> uint {\n  let y <- x + 1;\n  return y;\n}\n"
            ),
            "main",
            None,
            FAST,
            input_seed=0,
        )
        assert stats["superposed"] is False

    def test_phase_error_in_optimizer_is_caught(self, monkeypatch):
        """A Z injected on a superposed qubit fixes every basis state, so
        only the amplitude oracle can see it."""
        from repro.circopt import cancel as cancel_mod
        from repro.circuit.circuit import Circuit
        from repro.circuit.gates import z as z_gate

        real_run = cancel_mod.CliffordTPeephole.run

        def broken(self, circuit):
            result = real_run(self, circuit)
            target = result.registers["x"].offset
            out = Circuit(result.num_qubits, list(result.gates) + [z_gate(target)])
            out.registers = result.registers
            return out

        monkeypatch.setattr(cancel_mod.CliffordTPeephole, "run", broken)
        with pytest.raises(OracleFailure) as info:
            run_oracles(
                parse_program(SUPERPOSED_SRC), "main", None, FULL, input_seed=0
            )
        assert "peephole" in info.value.oracle
        # ... and the classical basis-state oracle indeed cannot:
        from repro.circuit import classical_sim
        from repro.circuit.gates import z as z2

        assert classical_sim.apply_gate(0, z2(0)) == 0

    def test_optimization_level_amplitude_drift_is_caught(self, monkeypatch):
        """An optimization pass that drops an H statement changes the
        amplitude dictionary and must be flagged against the reference.

        The defect is injected into the pass framework's spire engine —
        the traversal every ``flatten``/``narrow``/``spire`` pipeline
        runs through since the pass-manager refactor."""
        from repro.ir.core import Hadamard, Skip
        from repro.passes import ENGINES

        real = ENGINES["spire"]

        def h_dropping(rules, stmt):
            from repro.ir.core import Seq, seq as mkseq

            out = real(rules, stmt)

            def strip(node):
                if isinstance(node, Hadamard):
                    return Skip()
                if isinstance(node, Seq):
                    return mkseq(*(strip(s) for s in node.stmts))
                return node

            return strip(out)

        monkeypatch.setitem(ENGINES, "spire", h_dropping)
        with pytest.raises(OracleFailure) as info:
            run_oracles(
                parse_program(SUPERPOSED_SRC), "main", None, FAST, input_seed=0
            )
        assert "spire" in info.value.oracle

    def test_global_phase_is_canonicalized(self):
        import cmath
        import math

        from repro.fuzz.oracles import _canonical_branches, _compare_branches

        layout = (("x", 0, 1),)
        amp = 1.0 / math.sqrt(2.0)
        a = {0: amp, 1: amp * 1j}
        phase = cmath.exp(1j * 1.234)
        b = {idx: value * phase for idx, value in a.items()}
        canon_a = _canonical_branches(a, layout, None, "test", 1e-9)
        canon_b = _canonical_branches(b, layout, None, "test", 1e-9)
        _compare_branches(canon_a, canon_b, "test", 1e-7)

    def test_amplitude_difference_beyond_tolerance_flagged(self):
        import math

        from repro.fuzz.oracles import _canonical_branches, _compare_branches

        layout = (("x", 0, 1),)
        amp = 1.0 / math.sqrt(2.0)
        canon_a = _canonical_branches({0: amp, 1: amp}, layout, None, "t", 1e-9)
        canon_b = _canonical_branches({0: amp, 1: -amp}, layout, None, "t", 1e-9)
        with pytest.raises(OracleFailure):
            _compare_branches(canon_a, canon_b, "t", 1e-7)

    def test_ancilla_nonzero_branch_flagged(self):
        from repro.fuzz.oracles import _canonical_branches

        layout = (("x", 0, 1),)  # qubit 1 is outside the register map
        with pytest.raises(OracleFailure) as info:
            _canonical_branches({0b10: 1.0}, layout, None, "t", 1e-9)
        assert info.value.oracle.startswith("ancilla-nonzero")

    @pytest.mark.parametrize("seed", [0, 3, 7, 11])
    def test_generated_superposition_seeds(self, seed):
        report = check_generated(seed, GenConfig(hadamard_prob=0.3), FULL)
        assert report.ok, f"{report.oracle}: {report.message}\n{report.source}"


class TestHeapShapeWorkloads:
    """Well-formed list/tree workloads checked end to end."""

    @pytest.mark.parametrize("seed", [2, 3])  # seed 2/3 generate list shapes
    def test_list_traversal_seeds(self, seed):
        from repro.fuzz.generator import generate_workload
        from repro.fuzz.oracles import oracle_config_for

        gen = GenConfig(heap_shapes=True)
        cfg = oracle_config_for(gen, FAST)
        workload = generate_workload(seed, gen, cfg.compiler)
        assert any(shape.kind == "list" for shape in workload.shapes)
        report = check_generated(seed, gen, FAST)
        assert report.ok, f"{report.oracle}: {report.message}\n{report.source}"

    @pytest.mark.parametrize("seed", [0, 1])  # seed 0/1 generate tree shapes
    def test_tree_traversal_seeds(self, seed):
        from repro.fuzz.generator import generate_workload
        from repro.fuzz.oracles import oracle_config_for

        gen = GenConfig(heap_shapes=True)
        cfg = oracle_config_for(gen, FAST)
        workload = generate_workload(seed, gen, cfg.compiler)
        assert any(shape.kind == "tree" for shape in workload.shapes)
        report = check_generated(seed, gen, FAST)
        assert report.ok, f"{report.oracle}: {report.message}\n{report.source}"

    def test_input_plan_lays_out_well_formed_structures(self):
        import random

        from repro.benchsuite.memory_images import (
            check_list_well_formed,
            check_tree_well_formed,
        )
        from repro.fuzz.generator import HEAP_FUZZ_CONFIG, HeapShapeInfo
        from repro.fuzz.oracles import _InputPlan

        shapes = (
            HeapShapeInfo("list", "xs", 3),
            HeapShapeInfo("tree", "t", 2),
        )
        widths = {"xs": 3, "t": 3, "acc": 2}
        plan = _InputPlan(
            random.Random(0), widths, shapes, HEAP_FUZZ_CONFIG, cell_bits=8
        )
        for _ in range(10):
            inputs, memory = plan.draw()
            check_list_well_formed(memory, inputs["xs"], HEAP_FUZZ_CONFIG)
            check_tree_well_formed(memory, inputs["t"], HEAP_FUZZ_CONFIG)

    def test_shaped_case_roundtrip(self, tmp_path):
        from repro.fuzz.generator import HEAP_FUZZ_CONFIG, generate_workload
        from repro.fuzz.generator import render_program

        gen = GenConfig(heap_shapes=True)
        workload = generate_workload(5, gen, HEAP_FUZZ_CONFIG)
        from dataclasses import asdict

        case = CorpusCase(
            name="shaped",
            source=render_program(workload.program),
            seed=5,
            input_seed=5,
            compiler=vars(HEAP_FUZZ_CONFIG),
            shapes=[asdict(shape) for shape in workload.shapes],
        )
        save_case(case, tmp_path)
        (loaded,) = load_corpus(tmp_path)
        assert loaded.shape_infos() == workload.shapes
        replay_case(loaded, FAST)


@pytest.mark.fuzz
@pytest.mark.parametrize("block", range(4))
def test_fresh_superposition_heap_sweep(block):
    """Fresh-seed superposition + heap-shape sweep; gated behind ``-m fuzz``."""
    base = 5_000 + 10 * block
    gen = GenConfig(hadamard_prob=0.3, heap_shapes=True)
    for seed in range(base, base + 10):
        report = check_generated(seed, gen, OracleConfig())
        assert report.ok, (
            f"seed {seed} {report.oracle}: {report.message}\n{report.source}"
        )
