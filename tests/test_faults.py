"""The deterministic fault-injection harness (:mod:`repro.faults`).

Plans are pure functions of (seed, kind, site, key, attempt): parsing,
decision draws and byte corruption must all replay identically, because
the chaos CI job asserts bit-identical sweep rows against a clean run.
"""

from __future__ import annotations

import os

import pytest

from repro.faults import (
    ENV_VAR,
    FaultPlanError,
    FaultSpec,
    InjectedCrash,
    InjectedFault,
    inject,
    parse_fault_plan,
)


@pytest.fixture(autouse=True)
def _no_ambient_plan(monkeypatch):
    monkeypatch.delenv(ENV_VAR, raising=False)
    inject.current_plan()  # resync the module cache with the clean env
    yield
    inject.current_plan()


# ------------------------------------------------------------------- parsing
def test_parse_roundtrip():
    text = "crash:worker.execute:p=0.3,corrupt:cache.store_point:p=0.2"
    plan = parse_fault_plan(text, seed=42)
    assert plan.seed == 42
    assert plan.spec_string() == text
    assert plan.to_env() == text + "@seed=42"
    again = parse_fault_plan(plan.to_env())
    assert again.seed == 42
    assert again.spec_string() == text


def test_parse_all_knobs():
    plan = parse_fault_plan("flaky:cache.load_point:p=0.5:a=3:n=2", seed=7)
    (spec,) = plan.specs
    assert spec.kind == "flaky"
    assert spec.site == "cache.load_point"
    assert spec.probability == 0.5
    assert spec.max_attempt == 3
    assert spec.max_fires == 2


@pytest.mark.parametrize(
    "bad",
    [
        "explode:worker.execute",       # unknown kind
        "crash:warp.core",              # unknown site
        "crash:worker.execute:p=2.0",   # probability out of range
        "crash:worker.execute:a=-1",    # negative attempt cap
        "crash",                        # missing site
        "",                             # empty plan
    ],
)
def test_parse_rejects(bad):
    with pytest.raises(FaultPlanError):
        parse_fault_plan(bad)


# ----------------------------------------------------------------- decisions
def test_decisions_are_deterministic():
    a = parse_fault_plan("crash:worker.execute:p=0.3", seed=42)
    b = parse_fault_plan("crash:worker.execute:p=0.3", seed=42)
    keys = [f"task-{i}" for i in range(200)]
    (spec,) = a.specs
    draws_a = [a.should_fire(spec, k, 0) for k in keys]
    draws_b = [b.should_fire(b.specs[0], k, 0) for k in keys]
    assert draws_a == draws_b
    # p=0.3 over 200 keys: some fire, most don't
    assert 20 < sum(draws_a) < 120


def test_decisions_vary_by_attempt_and_seed():
    plan = parse_fault_plan("crash:worker.execute:p=0.5", seed=1)
    other = parse_fault_plan("crash:worker.execute:p=0.5", seed=2)
    (spec,) = plan.specs
    by_attempt = {a: plan.should_fire(spec, "k", a) for a in range(64)}
    assert len(set(by_attempt.values())) == 2  # not stuck on one outcome
    diff = [
        a
        for a in range(64)
        if plan.should_fire(spec, "k", a) != other.should_fire(other.specs[0], "k", a)
    ]
    assert diff  # a different seed draws a different stream


def test_max_attempt_guarantees_convergence():
    plan = parse_fault_plan("crash:worker.execute:p=1.0:a=2", seed=0)
    (spec,) = plan.specs
    assert plan.should_fire(spec, "k", 0)
    assert plan.should_fire(spec, "k", 1)
    assert not plan.should_fire(spec, "k", 2)  # retries past the cap succeed


def test_max_fires_caps_per_plan_instance():
    plan = parse_fault_plan("flaky:cache.load_point:p=1.0:n=2", seed=0)
    fired = 0
    for _ in range(5):
        try:
            inject_fire_one(plan)
        except OSError:
            fired += 1
    assert fired == 2


def inject_fire_one(plan):
    (spec,) = plan.specs
    turn = plan.next_call(spec.site, "k")
    if plan.should_fire(spec, "k", turn):
        raise OSError("injected")


# ---------------------------------------------------------------- activation
def test_install_roundtrips_through_env():
    plan = parse_fault_plan("flaky:worker.execute:p=1.0", seed=9)
    inject.install(plan)
    try:
        assert os.environ[ENV_VAR] == plan.to_env()
        active = inject.current_plan()
        assert active is not None
        assert active.to_env() == plan.to_env()
        with pytest.raises(InjectedFault):
            inject.fire("worker.execute", key="k", attempt=0)
    finally:
        inject.uninstall()
    assert ENV_VAR not in os.environ
    assert inject.current_plan() is None
    inject.fire("worker.execute", key="k", attempt=0)  # no-op when inactive


def test_crash_raises_in_parent_process():
    inject.install(parse_fault_plan("crash:worker.execute:p=1.0", seed=0))
    try:
        inject.mark_worker(False)
        with pytest.raises(InjectedCrash):
            inject.fire("worker.execute", key="k", attempt=0)
    finally:
        inject.uninstall()


def test_flaky_cache_site_raises_oserror():
    inject.install(parse_fault_plan("flaky:cache.load_point:p=1.0", seed=0))
    try:
        with pytest.raises(OSError):
            inject.fire("cache.load_point", key="k")
    finally:
        inject.uninstall()


# ------------------------------------------------------------------- mangling
def test_mangle_is_deterministic_and_corrupting():
    inject.install(parse_fault_plan("corrupt:cache.store_point:p=1.0", seed=3))
    try:
        data = b'{"format": 2, "row": {"t": 17}}' * 4
        one = inject.mangle("cache.store_point", "key-a", data)
        inject.uninstall()
        inject.install(parse_fault_plan("corrupt:cache.store_point:p=1.0", seed=3))
        two = inject.mangle("cache.store_point", "key-a", data)
        assert one == two          # same plan, same call index -> same bytes
        assert one != data         # and the bytes really are corrupted
        assert len(one) <= len(data)
    finally:
        inject.uninstall()


def test_mangle_noop_without_plan():
    data = b"payload"
    assert inject.mangle("cache.store_point", "k", data) == data


def test_mangle_modes_cover_truncate_flip_garbage():
    inject.install(parse_fault_plan("corrupt:cache.store_point:p=1.0", seed=5))
    try:
        data = bytes(range(256))
        seen = set()
        for i in range(30):
            out = inject.mangle("cache.store_point", f"key-{i}", data)
            assert out != data
            if len(out) < len(data):
                seen.add("truncate")
            else:
                delta = sum(a != b for a, b in zip(out, data))
                seen.add("flip" if delta == 1 else "garbage")
        assert seen == {"truncate", "flip", "garbage"}
    finally:
        inject.uninstall()
