"""Unit tests for the dataflow framework (repro.analysis.dataflow)."""

from __future__ import annotations

from typing import FrozenSet

import pytest

from repro.analysis import (
    BACKWARD,
    BODY,
    CallGraph,
    FORWARD,
    SETUP,
    UNCOMPUTE,
    Analysis,
    NodeView,
    fixpoint,
    run_core,
    run_surface,
)
from repro.errors import AnalysisError
from repro.ir import core
from repro.lang.desugar import lower_entry
from repro.lang.parser import parse_program

WITH_SRC = """
fun main(x: uint) -> uint {
  with { let a <- x + 1; } do {
    let y <- a * 2;
  }
  return y;
}
"""

IF_SRC = """
fun main(x: uint) -> uint {
  let c <- x == 1;
  if c { let y <- 3; } else { let y <- 4; }
  return y;
}
"""


class _Trace(Analysis):
    """Records (kind, role) of every atomic statement, in visit order."""

    def __init__(self, direction: str = FORWARD) -> None:
        self.direction = direction
        self.events: list = []

    def initial(self):
        return 0

    def join(self, a, b):
        return max(a, b)

    def transfer(self, view: NodeView, state, role: str = BODY):
        self.events.append((view.kind, role))
        return state + 1


class _Defined(Analysis):
    """Forward may-be-defined names (frozenset lattice)."""

    direction = FORWARD

    def initial(self) -> FrozenSet[str]:
        return frozenset()

    def join(self, a, b):
        return a | b

    def transfer(self, view, state, role=BODY):
        if view.kind in ("let", "unlet"):
            if view.kind == "unlet" or role == UNCOMPUTE:
                return state - frozenset(view.writes[:1])
            return state | frozenset(view.writes[:1])
        return state


def _body(src: str):
    return parse_program(src).fundefs[0].body


class TestRoles:
    def test_with_setup_replayed_as_uncompute(self):
        tr = _Trace()
        run_surface(_body(WITH_SRC), tr)
        lets = [e for e in tr.events if e[0] == "let"]
        # setup leg, body let, uncompute leg (the desugared with replays
        # its setup), then the return binding is not a statement
        assert ("let", SETUP) in lets
        assert ("let", UNCOMPUTE) in lets
        assert ("let", BODY) in lets
        # forward order: setup before body before uncompute
        assert lets.index(("let", SETUP)) < lets.index(("let", BODY))
        assert lets.index(("let", BODY)) < lets.index(("let", UNCOMPUTE))

    def test_backward_reverses_the_with_legs(self):
        tr = _Trace(direction=BACKWARD)
        run_surface(_body(WITH_SRC), tr)
        lets = [e for e in tr.events if e[0] == "let"]
        assert lets.index(("let", UNCOMPUTE)) < lets.index(("let", BODY))
        assert lets.index(("let", BODY)) < lets.index(("let", SETUP))

    def test_nested_setup_inherits_the_outer_role(self):
        src = """
        fun main(x: uint) -> uint {
          with {
            with { let a <- x + 1; } do { let b <- a; }
          } do {
            let y <- b;
          }
          return y;
        }
        """
        tr = _Trace()
        run_surface(_body(src), tr)
        roles = [r for k, r in tr.events if k == "let"]
        # the inner with's own legs run under the outer setup's role:
        # nothing inside an outer setup is ever plain BODY except the
        # outer body itself
        assert roles.count(BODY) == 1


class TestJoins:
    def test_if_branches_join_with_fall_through(self):
        out = run_surface(_body(IF_SRC), _Defined())
        # both branches bind y; the join keeps it (may-analysis)
        assert "y" in out and "c" in out

    def test_with_uncompute_removes_setup_bindings(self):
        out = run_surface(_body(WITH_SRC), _Defined())
        assert "a" not in out  # uncomputed by the with
        assert "y" in out


class TestCoreAdapter:
    def test_same_analysis_runs_over_core_ir(self):
        program = parse_program(WITH_SRC)
        lowered = lower_entry(program, "main", None)
        out = run_core(lowered.stmt, _Defined())
        assert isinstance(out, frozenset)
        tr = _Trace()
        run_core(lowered.stmt, tr)
        kinds = {k for k, _ in tr.events}
        assert "let" in kinds

    def test_core_with_roles(self):
        stmt = core.With(
            core.Assign("a", core.AtomE(core.Lit(core.UIntV(1)))),
            core.Assign("b", core.AtomE(core.Var("a"))),
        )
        tr = _Trace()
        run_core(stmt, tr)
        assert [r for _, r in tr.events] == [SETUP, BODY, UNCOMPUTE]


class TestFixpoint:
    def test_converges(self):
        assert fixpoint(lambda s: min(s + 1, 5), 0) == 5

    def test_divergence_raises(self):
        with pytest.raises(AnalysisError):
            fixpoint(lambda s: s + 1, 0, max_iter=10)


class TestCallGraph:
    def test_recursion_depth_and_reachability(self, length_source):
        program = parse_program(length_source)
        graph = CallGraph(program)
        assert graph.recursion_depth("length") == 1
        assert graph.reachable("length") == ["length"]
        sites = graph.callees("length")
        assert len(sites) == 1
        assert sites[0].callee == "length"
        assert sites[0].size is not None

    def test_nested_recursion_counts_levels(self):
        from repro.benchsuite.programs import get_source

        program = parse_program(get_source("contains"))
        graph = CallGraph(program)
        # contains recurses and calls recursive compare: two levels
        assert graph.recursion_depth("contains") == 2
        assert set(graph.reachable("contains")) == {"contains", "compare"}

    def test_summaries_fixpoint(self):
        src = """
        fun helper(x: uint) -> uint {
          H(x);
          return x;
        }
        fun main(x: uint) -> uint {
          let y <- helper(x);
          return y;
        }
        """
        program = parse_program(src)
        graph = CallGraph(program)

        def init(fdef):
            from repro.analysis.superpos import _local_hadamards

            return _local_hadamards(fdef) > 0

        def step(fdef, current):
            if current[fdef.name]:
                return True
            return any(
                current.get(s.callee, False) for s in graph.callees(fdef.name)
            )

        result = graph.summaries(init, step)
        assert result == {"helper": True, "main": True}
