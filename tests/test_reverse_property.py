"""Property tests for ``ir/reverse.py`` on Table-1 and generated programs.

Satellite of the fuzzing PR: reversal must be an involution structurally
(``I[I[s]] = s``), and running ``s; I[s]`` must restore every register and
every heap cell — on the paper's benchmark programs, on hypothesis-generated
core programs, and on the fuzz generator's surface programs.  The compiled
circuit's inverse must undo it on basis states, too.
"""

import hypothesis.strategies as st
import pytest
from hypothesis import HealthCheck, given, settings

from repro.benchsuite import (
    ENTRIES,
    SOURCES,
    UNSIZED,
    BenchmarkRunner,
    HeapImage,
)
from repro.circuit import classical_sim
from repro.config import CompilerConfig
from repro.fuzz import DEFAULT_FUZZ_CONFIG, generate_program
from repro.ir import reverse, run_program, seq
from repro.ir.reverse import expand_with
from repro.lang.desugar import lower_entry
from repro.lang.parser import parse_program

from test_property import SLOW, input_strategy, program_strategy, CFG, INPUT_TYPES

BENCH_CFG = CompilerConfig(word_width=3, addr_width=3, heap_cells=7)


def _lowered_benchmarks(depth=2):
    for name, source in sorted(SOURCES.items()):
        size = None if name in UNSIZED else depth
        yield name, lower_entry(parse_program(source), ENTRIES[name], size, BENCH_CFG)


class TestInvolution:
    @pytest.mark.parametrize("depth", [2, 3])
    def test_table1_reverse_involution(self, depth):
        for name, lowered in _lowered_benchmarks(depth):
            assert reverse(reverse(lowered.stmt)) == lowered.stmt, name

    @pytest.mark.parametrize("seed", range(15))
    def test_generated_reverse_involution(self, seed):
        program = generate_program(seed)
        lowered = lower_entry(program, "main", None, DEFAULT_FUZZ_CONFIG)
        assert reverse(reverse(lowered.stmt)) == lowered.stmt

    @given(stmt=program_strategy)
    @SLOW
    def test_hypothesis_reverse_involution(self, stmt):
        assert reverse(reverse(stmt)) == stmt

    @given(stmt=program_strategy)
    @SLOW
    def test_involution_commutes_with_with_expansion(self, stmt):
        # expanding with-blocks then reversing == reversing then expanding
        assert expand_with(reverse(stmt)) == reverse(expand_with(stmt))


class TestUncomputation:
    """``s; I[s]`` restores registers and heap."""

    def test_table1_roundtrip_restores_state(self):
        for name, lowered in _lowered_benchmarks(depth=2):
            heap = HeapImage(BENCH_CFG)
            head = heap.add_list([3, 1])
            inputs = {}
            for pname, pty in lowered.param_types.items():
                width = lowered.table.width(pty)
                inputs[pname] = head if str(pty).startswith("ptr") else min(
                    2, (1 << width) - 1
                )
            memory = heap.as_memory()
            machine = run_program(
                seq(lowered.stmt, reverse(lowered.stmt)),
                lowered.table,
                dict(inputs),
                dict(lowered.param_types),
                memory=list(memory),
                default_zero=True,
            )
            for reg, value in machine.registers.items():
                expected = inputs.get(reg, 0)
                assert value == expected, f"{name}: {reg}={value} != {expected}"
            assert machine.memory == memory, name

    @given(stmt=program_strategy, inputs=input_strategy)
    @SLOW
    def test_hypothesis_roundtrip_restores_state(self, stmt, inputs):
        from repro.types import TypeTable

        machine = run_program(
            seq(stmt, reverse(stmt)),
            TypeTable(CFG),
            dict(inputs),
            dict(INPUT_TYPES),
        )
        for name, value in machine.registers.items():
            assert value == inputs.get(name, 0), name

    @pytest.mark.parametrize("name", ["length", "length-simplified", "pop_front"])
    def test_reversed_circuit_restores_ancillae(self, name):
        """Circuit-level uncomputation: C⁻¹(C|x⟩) = |x⟩ incl. all ancillae."""
        runner = BenchmarkRunner(BENCH_CFG)
        depth = None if name in UNSIZED else 2
        circuit = runner.compile(name, depth).circuit
        inverse = circuit.inverse()
        for bits in (0, 1, (1 << circuit.num_qubits) - 1, 0x5A5A % (1 << circuit.num_qubits)):
            final = classical_sim.run(circuit, bits)
            assert classical_sim.run(inverse, final) == bits, (name, bits)
