"""Property-based tests (hypothesis) over random programs and circuits.

Invariants checked:

* the exact cost model equals the compiled circuit's counts on *random*
  well-formed core programs (Theorems 5.1/5.2);
* the compiled circuit agrees with the IR interpreter on random inputs;
* Spire rewrites preserve semantics and never increase T-complexity on
  control-flow-heavy random programs;
* circuit optimizers preserve the unitary (up to global phase) of random
  Clifford+T circuits;
* reversal: running ``s; I[s]`` restores every register.
"""

import hypothesis.strategies as st
from hypothesis import HealthCheck, given, settings

from repro.circopt import cancel_to_fixpoint, fold_phases
from repro.circuit import Circuit, classical_sim, cnot, h, s as s_gate, t as t_gate, tdg, toffoli, x
from repro.circuit.statevector import circuits_equivalent
from repro.compiler import compile_core
from repro.config import CompilerConfig
from repro.cost import exact_counts
from repro.ir import (
    Assign,
    AtomE,
    BinOp,
    BoolV,
    If,
    Lit,
    Stmt,
    Swap,
    UIntV,
    UnOp,
    Var,
    With,
    check_program,
    infer_types,
    reverse,
    run_program,
    seq,
)
from repro.opt import spire_optimize
from repro.types import BOOL, UINT, TypeTable

CFG = CompilerConfig(word_width=2, addr_width=2, heap_cells=2)

# ---------------------------------------------------------------- programs
# A small generator of well-formed core programs over fixed inputs:
# bools c0..c2 and uints u0..u2.
BOOL_VARS = ["c0", "c1", "c2"]
UINT_VARS = ["u0", "u1", "u2"]
INPUT_TYPES = {**{b: BOOL for b in BOOL_VARS}, **{u: UINT for u in UINT_VARS}}

bool_atom = st.one_of(
    st.sampled_from(BOOL_VARS).map(Var),
    st.booleans().map(lambda b: Lit(BoolV(b))),
)
uint_atom = st.one_of(
    st.sampled_from(UINT_VARS).map(Var),
    st.integers(0, 3).map(lambda n: Lit(UIntV(n))),
)

fresh_names = st.integers(0, 1_000_000).map(lambda n: f"v{n}")


def bool_expr():
    return st.one_of(
        bool_atom.map(AtomE),
        st.tuples(bool_atom, bool_atom).map(lambda p: BinOp("&&", *p)),
        st.tuples(bool_atom, bool_atom).map(lambda p: BinOp("||", *p)),
        st.sampled_from(BOOL_VARS).map(lambda v: UnOp("not", Var(v))),
        st.tuples(uint_atom, uint_atom).map(lambda p: BinOp("==", *p)),
        st.tuples(uint_atom, uint_atom).map(lambda p: BinOp("<", *p)),
    )


def uint_expr():
    return st.one_of(
        uint_atom.map(AtomE),
        st.tuples(st.sampled_from(["+", "-", "*"]), uint_atom, uint_atom).map(
            lambda t: BinOp(t[0], t[1], t[2])
        ),
        st.sampled_from(UINT_VARS).map(lambda v: UnOp("test", Var(v))),
    )


def assign_stmt():
    # fresh targets only, so programs are trivially well-formed
    return st.one_of(
        st.tuples(fresh_names, bool_expr()).map(lambda p: Assign("b" + p[0], p[1])),
        st.tuples(fresh_names, uint_expr()).map(lambda p: Assign("x" + p[0], p[1])),
    )


def program(depth=2):
    if depth == 0:
        return assign_stmt()
    sub = program(depth - 1)
    return st.one_of(
        assign_stmt(),
        st.lists(sub, min_size=1, max_size=3).map(lambda ss: seq(*ss)),
        st.tuples(st.sampled_from(BOOL_VARS), sub).map(lambda p: If(p[0], p[1])),
        st.tuples(sub, sub).map(lambda p: With(p[0], p[1])),
    )


def well_formed(stmt: Stmt) -> bool:
    # check_program scopes With-setup variables, but the compile path's
    # infer_types keeps one flat name->type map, so a drawn name reused at
    # a different type after a With passes the former and fails the latter;
    # these tests assert invariants on programs the compiler accepts, so
    # filter through both.
    try:
        check_program(stmt, TypeTable(CFG), INPUT_TYPES)
        infer_types(stmt, TypeTable(CFG), INPUT_TYPES)
        return True
    except Exception:
        return False


program_strategy = program(2).filter(well_formed)

input_strategy = st.fixed_dictionaries(
    {**{b: st.integers(0, 1) for b in BOOL_VARS}, **{u: st.integers(0, 3) for u in UINT_VARS}}
)

SLOW = settings(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.filter_too_much],
)


@SLOW
@given(stmt=program_strategy)
def test_exact_cost_model_matches_compiled_circuit(stmt):
    table = TypeTable(CFG)
    cp = compile_core(stmt, table, INPUT_TYPES)
    mcx, t = exact_counts(cp.core, cp.table, cp.var_types, cp.cell_bits)
    assert mcx == cp.mcx_complexity()
    assert t == cp.t_complexity()


@SLOW
@given(stmt=program_strategy, inputs=input_strategy)
def test_circuit_agrees_with_interpreter(stmt, inputs):
    table = TypeTable(CFG)
    cp = compile_core(stmt, table, INPUT_TYPES)
    machine = run_program(stmt, table, dict(inputs), dict(INPUT_TYPES))
    out = classical_sim.run_on_registers(cp.circuit, inputs)
    for name, value in machine.registers.items():
        if name in cp.circuit.registers:
            assert out[name] == value, name


@SLOW
@given(stmt=program_strategy, inputs=input_strategy)
def test_spire_preserves_semantics(stmt, inputs):
    table = TypeTable(CFG)
    optimized = spire_optimize(stmt)
    m1 = run_program(stmt, table, dict(inputs), dict(INPUT_TYPES))
    m2 = run_program(optimized, table, dict(inputs), dict(INPUT_TYPES))
    for name in set(m1.registers) | set(m2.registers):
        if name.startswith("%cf"):
            assert m2.registers.get(name, 0) == 0, name  # temporaries clean
        else:
            assert m1.registers.get(name, 0) == m2.registers.get(name, 0), name


@SLOW
@given(stmt=program_strategy)
def test_spire_t_overhead_bounded_by_flattening_constant(stmt):
    # Theorem 6.1: flattening turns O(kn) into O(k+n) — for tiny bodies the
    # introduced `z <- x && y` (one Toffoli, computed and uncomputed: 14 T)
    # per nesting level may exceed the savings, so the bound is additive.
    table = TypeTable(CFG)
    before = compile_core(stmt, table, INPUT_TYPES, optimization="none")
    after = compile_core(stmt, table, INPUT_TYPES, optimization="spire")
    n_ifs = sum(1 for node in stmt.walk() if isinstance(node, If))
    assert after.t_complexity() <= before.t_complexity() + 14 * n_ifs


@SLOW
@given(stmt=program_strategy, inputs=input_strategy)
def test_reversal_restores_state(stmt, inputs):
    table = TypeTable(CFG)
    round_trip = seq(stmt, reverse(stmt))
    machine = run_program(round_trip, table, dict(inputs), dict(INPUT_TYPES))
    for name, value in machine.registers.items():
        if name in inputs:
            assert value == inputs[name], name
        else:
            assert value == 0, name


# ---------------------------------------------------------------- circuits
def random_clifford_t(num_qubits=3):
    gate = st.one_of(
        st.tuples(st.sampled_from(range(num_qubits))).map(lambda q: x(q[0])),
        st.tuples(st.sampled_from(range(num_qubits))).map(lambda q: h(q[0])),
        st.tuples(st.sampled_from(range(num_qubits))).map(lambda q: t_gate(q[0])),
        st.tuples(st.sampled_from(range(num_qubits))).map(lambda q: tdg(q[0])),
        st.tuples(st.sampled_from(range(num_qubits))).map(lambda q: s_gate(q[0])),
        st.permutations(range(num_qubits)).map(lambda p: cnot(p[0], p[1])),
        st.permutations(range(num_qubits)).map(lambda p: toffoli(p[0], p[1], p[2])),
    )
    return st.lists(gate, min_size=0, max_size=14).map(
        lambda gates: Circuit(num_qubits, gates)
    )


@SLOW
@given(circ=random_clifford_t())
def test_cancel_pass_preserves_unitary(circ):
    reduced = Circuit(circ.num_qubits, cancel_to_fixpoint(circ.gates))
    assert circuits_equivalent(circ, reduced)


@SLOW
@given(circ=random_clifford_t())
def test_phase_folding_preserves_unitary(circ):
    from repro.circuit import to_clifford_t

    clifford_t = to_clifford_t(circ)
    folded = fold_phases(clifford_t)
    assert circuits_equivalent(clifford_t, folded)
    assert folded.t_count() <= clifford_t.t_count()
