"""Unit tests for the Tower lexer."""

import pytest

from repro.errors import LexError
from repro.lang.lexer import tokenize
from repro.lang.tokens import TokenKind


def kinds(source):
    return [t.kind for t in tokenize(source)[:-1]]


def texts(source):
    return [t.text for t in tokenize(source)[:-1]]


class TestBasics:
    def test_empty_input_gives_only_eof(self):
        tokens = tokenize("")
        assert len(tokens) == 1
        assert tokens[0].kind is TokenKind.EOF

    def test_identifier(self):
        (tok,) = tokenize("hello")[:-1]
        assert tok.kind is TokenKind.IDENT
        assert tok.text == "hello"

    def test_identifier_with_underscore_and_prime(self):
        assert texts("is_empty x' _tmp") == ["is_empty", "x'", "_tmp"]

    def test_integer(self):
        (tok,) = tokenize("42")[:-1]
        assert tok.kind is TokenKind.INT
        assert tok.text == "42"

    def test_keywords_recognized(self):
        for kw in ["type", "fun", "let", "if", "else", "with", "do", "return",
                   "not", "test", "true", "false", "null", "default",
                   "uint", "bool", "ptr", "skip"]:
            (tok,) = tokenize(kw)[:-1]
            assert tok.kind is TokenKind.KEYWORD, kw

    def test_ident_prefixed_by_keyword_is_ident(self):
        (tok,) = tokenize("lettuce")[:-1]
        assert tok.kind is TokenKind.IDENT


class TestPunctuation:
    def test_longest_match_memswap_arrow(self):
        assert texts("<->") == ["<->"]

    def test_assign_arrows(self):
        assert texts("<- ->") == ["<-", "->"]

    def test_arrow_vs_less_than(self):
        assert texts("a < b") == ["a", "<", "b"]

    def test_comparison_operators(self):
        assert texts("== != && ||") == ["==", "!=", "&&", "||"]

    def test_brackets_and_braces(self):
        assert texts("[]{}()") == ["[", "]", "{", "}", "(", ")"]

    def test_projection_dot(self):
        assert texts("x.1") == ["x", ".", "1"]


class TestComments:
    def test_line_comment(self):
        assert texts("a // comment\n b") == ["a", "b"]

    def test_block_comment(self):
        assert texts("a /* b c */ d") == ["a", "d"]

    def test_block_comment_spanning_lines(self):
        assert texts("a /* x\ny\nz */ b") == ["a", "b"]

    def test_unterminated_block_comment_raises(self):
        with pytest.raises(LexError):
            tokenize("a /* never closed")


class TestPositions:
    def test_line_and_column_tracking(self):
        tokens = tokenize("ab\n  cd")
        assert (tokens[0].line, tokens[0].column) == (1, 1)
        assert (tokens[1].line, tokens[1].column) == (2, 3)

    def test_invalid_character_reports_position(self):
        with pytest.raises(LexError) as err:
            tokenize("a\n  @")
        assert err.value.line == 2
        assert err.value.column == 3


def test_full_program_lexes(length_source):
    tokens = tokenize(length_source)
    assert tokens[-1].kind is TokenKind.EOF
    assert any(t.text == "length" for t in tokens)
    assert any(t.text == "<->" for t in tokens)
