"""Unit tests for heap-image construction and the shape invariants."""

import random

import pytest

from repro.benchsuite.memory_images import (
    HeapImage,
    check_list_well_formed,
    check_tree_well_formed,
    decode_list_from_memory,
    list_image,
    mutate_list_shape,
    mutate_tree_shape,
    random_list_shape,
    random_tree_shape,
    tree_depth,
    tree_size,
    value_tree_image,
)
from repro.config import CompilerConfig
from repro.errors import SimulationError
from repro.fuzz.generator import HEAP_FUZZ_CONFIG

CFG = CompilerConfig(word_width=3, addr_width=3, heap_cells=6)


class TestHeapImage:
    def test_alloc_sequential_one_based(self):
        image = HeapImage(CFG)
        assert [image.alloc() for _ in range(3)] == [1, 2, 3]

    def test_alloc_exhaustion(self):
        image = HeapImage(CFG)
        for _ in range(CFG.heap_cells):
            image.alloc()
        with pytest.raises(SimulationError):
            image.alloc()

    def test_list_layout_and_decode(self):
        image = HeapImage(CFG)
        head = image.add_list([5, 2, 7])
        assert head == 1
        assert [v for v, _ in image.read_list(head)] == [5, 2, 7]
        memory = image.as_memory()
        assert len(memory) == CFG.heap_cells + 1
        assert memory[0] == 0
        registers = image.as_registers()
        assert decode_list_from_memory(registers, head, CFG) == [5, 2, 7]

    def test_empty_list_is_null(self):
        image = HeapImage(CFG)
        assert image.add_list([]) == 0

    def test_value_too_wide_rejected(self):
        image = HeapImage(CFG)
        with pytest.raises(SimulationError):
            image.add_list([1 << CFG.word_width])

    def test_value_tree_layout(self):
        image = HeapImage(CFG)
        shape = (3, (1, None, None), (2, None, (4, None, None)))
        root = image.add_value_tree(shape)
        assert root != 0
        assert check_tree_well_formed(image.as_memory(), root, CFG) == shape

    def test_empty_tree_is_null(self):
        image = HeapImage(CFG)
        assert image.add_value_tree(None) == 0

    def test_bst_tree_layout_still_works(self):
        image = HeapImage(CFG)
        root = image.add_tree((([1, 2]), None, None))
        assert root != 0
        # the key string is itself a well-formed list
        key_addr = image.cells[root] & ((1 << CFG.addr_width) - 1)
        assert check_list_well_formed(image.as_memory(), key_addr, CFG) == (1, 2)


class TestWellFormedness:
    def test_cyclic_list_detected(self):
        image = HeapImage(CFG)
        head = image.add_list([1, 2])
        memory = image.as_memory()
        # point the tail's next back at the head
        memory[2] = 2 | (head << CFG.word_width)
        with pytest.raises(SimulationError):
            check_list_well_formed(memory, head, CFG)

    def test_out_of_bounds_list_detected(self):
        image = HeapImage(CFG)
        head = image.add_list([1])
        memory = image.as_memory()
        memory[1] = 1 | (7 << CFG.word_width)  # next = 7 > heap_cells
        with pytest.raises(SimulationError):
            check_list_well_formed(memory, head, CFG)

    def test_shared_tree_node_detected(self):
        image = HeapImage(CFG)
        leaf = image.add_value_tree((1, None, None))
        root = image.alloc()
        # both children point at the same leaf
        image.write(root, image.encode_value_tree_node(2, leaf, leaf))
        with pytest.raises(SimulationError):
            check_tree_well_formed(image.as_memory(), root, CFG)

    def test_cyclic_tree_detected(self):
        image = HeapImage(CFG)
        root = image.alloc()
        image.write(root, image.encode_value_tree_node(1, root, 0))
        with pytest.raises(SimulationError):
            check_tree_well_formed(image.as_memory(), root, CFG)


class TestShapes:
    def test_random_list_shapes_lay_out_well_formed(self):
        rng = random.Random(0)
        for _ in range(50):
            values = random_list_shape(rng, HEAP_FUZZ_CONFIG)
            image, head = list_image(HEAP_FUZZ_CONFIG, values)
            assert check_list_well_formed(image.as_memory(), head, HEAP_FUZZ_CONFIG) == values

    def test_list_mutations_preserve_invariants(self):
        rng = random.Random(1)
        values = random_list_shape(rng, HEAP_FUZZ_CONFIG)
        for _ in range(100):
            values = mutate_list_shape(rng, values, HEAP_FUZZ_CONFIG)
            assert len(values) <= HEAP_FUZZ_CONFIG.heap_cells
            image, head = list_image(HEAP_FUZZ_CONFIG, values)
            assert check_list_well_formed(image.as_memory(), head, HEAP_FUZZ_CONFIG) == values

    def test_random_tree_shapes_lay_out_well_formed(self):
        rng = random.Random(2)
        for _ in range(50):
            tree = random_tree_shape(rng, HEAP_FUZZ_CONFIG, max_depth=3)
            assert tree_depth(tree) <= 3
            assert tree_size(tree) <= HEAP_FUZZ_CONFIG.heap_cells
            image, root = value_tree_image(HEAP_FUZZ_CONFIG, tree)
            assert check_tree_well_formed(image.as_memory(), root, HEAP_FUZZ_CONFIG) == tree

    def test_tree_mutations_preserve_invariants(self):
        rng = random.Random(3)
        tree = random_tree_shape(rng, HEAP_FUZZ_CONFIG, max_depth=3)
        for _ in range(100):
            tree = mutate_tree_shape(rng, tree, HEAP_FUZZ_CONFIG, max_depth=3)
            assert tree_size(tree) <= HEAP_FUZZ_CONFIG.heap_cells
            image, root = value_tree_image(HEAP_FUZZ_CONFIG, tree)
            assert check_tree_well_formed(image.as_memory(), root, HEAP_FUZZ_CONFIG) == tree

    def test_mutations_are_deterministic(self):
        a = mutate_list_shape(random.Random(7), (1, 2, 3), HEAP_FUZZ_CONFIG)
        b = mutate_list_shape(random.Random(7), (1, 2, 3), HEAP_FUZZ_CONFIG)
        assert a == b

    def test_shapes_reach_empty_and_full(self):
        rng = random.Random(4)
        lengths = {
            len(random_list_shape(rng, HEAP_FUZZ_CONFIG)) for _ in range(200)
        }
        assert 0 in lengths
        assert HEAP_FUZZ_CONFIG.heap_cells in lengths
