"""Retry policy, failure rows, and the sweep checkpoint journal."""

from __future__ import annotations

import json

import pytest

from repro.benchsuite import (
    BenchmarkRunner,
    GridTask,
    RetryPolicy,
    SerialBackend,
    SweepJournal,
    failure_row,
    grid_fingerprint,
    measure_tasks,
    task_fingerprint,
)
from repro.benchsuite.parallel import GridResult, run_task_resilient
from repro.config import CompilerConfig

TINY = CompilerConfig(word_width=3, addr_width=3, heap_cells=5)
TASK = GridTask("measure", "length", 2)


class FlakyRunner:
    """Fails the first ``failures`` calls per task, then succeeds."""

    def __init__(self, failures: int, exc: Exception = None):
        self.failures = failures
        self.exc = exc or RuntimeError("transient")
        self.calls = 0
        self.cache = None

    def measure(self, name, depth, optimization):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc

        class Point:
            def row(self):
                return {
                    "name": name,
                    "depth": depth,
                    "optimization": optimization,
                    "t": 17,
                }

        return Point()


# ------------------------------------------------------------------- policy
def test_backoff_is_deterministic_and_bounded():
    policy = RetryPolicy(backoff_base=0.1, backoff_cap=1.0, seed=4)
    delays = [policy.backoff_delay("k", f) for f in range(1, 8)]
    assert delays == [policy.backoff_delay("k", f) for f in range(1, 8)]
    assert all(d >= delays[0] or d >= 1.0 for d in delays[1:])
    assert max(delays) <= 1.0 * 1.5  # cap times max jitter
    assert policy.backoff_delay("other", 1) != delays[0]  # jitter keyed


def test_failure_row_schema():
    row = failure_row(TASK, ValueError("boom"), stage="execute", attempts=3)
    assert row["failed"] is True
    assert row["name"] == "length" and row["depth"] == 2
    assert row["error_kind"] == "exception:ValueError"
    assert row["stage"] == "execute"
    assert row["attempts"] == 3
    assert row["message"] == "boom"
    assert len(row["traceback_digest"]) == 16
    json.dumps(row)  # failure rows must be JSON-ready


# ----------------------------------------------------------- resilient loop
def test_retry_then_success_annotates_attempts():
    runner = FlakyRunner(failures=2)
    row = run_task_resilient(runner, TASK, RetryPolicy(retries=2), sleep=lambda s: None)
    assert row["t"] == 17
    assert row["attempts"] == 3
    assert runner.calls == 3


def test_clean_success_has_no_attempts_key():
    row = run_task_resilient(FlakyRunner(0), TASK, RetryPolicy(), sleep=lambda s: None)
    assert "attempts" not in row  # bit-identity with non-resilient rows


def test_exhausted_retries_become_failure_row():
    runner = FlakyRunner(failures=99)
    row = run_task_resilient(runner, TASK, RetryPolicy(retries=2), sleep=lambda s: None)
    assert row["failed"] is True
    assert row["attempts"] == 3
    assert runner.calls == 3  # budget respected


def test_keyboard_interrupt_propagates():
    runner = FlakyRunner(failures=1, exc=None)
    runner.exc = KeyboardInterrupt()
    with pytest.raises(KeyboardInterrupt):
        run_task_resilient(runner, TASK, RetryPolicy(retries=5), sleep=lambda s: None)


# ---------------------------------------------------------- serial backend
def test_serial_backend_without_policy_propagates():
    with pytest.raises(RuntimeError):
        SerialBackend().run(FlakyRunner(99), [TASK])


def test_serial_backend_with_policy_isolates_failures():
    policy = RetryPolicy(retries=0, backoff_base=0.0)
    rows = SerialBackend(policy).run(FlakyRunner(1), [TASK, TASK])
    result = GridResult(rows)
    assert len(result.failed_rows) == 1
    assert len(result.ok()) == 1
    assert result.measure("length", 2)["t"] == 17  # indexers skip failures


def test_serial_backend_max_failures_aborts():
    policy = RetryPolicy(retries=0, max_failures=0, backoff_base=0.0)
    rows = SerialBackend(policy).run(FlakyRunner(99), [TASK] * 5)
    assert len(rows) == 1  # stopped right after crossing the threshold
    assert rows[0]["failed"]


# ------------------------------------------------------------------ journal
def test_journal_roundtrip(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl")
    journal.append("fp-1", {"t": 1})
    journal.append("fp-2", {"t": 2})
    journal.close()
    assert journal.load() == {"fp-1": {"t": 1}, "fp-2": {"t": 2}}


def test_journal_ignores_torn_trailing_line(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl")
    journal.append("fp-1", {"t": 1})
    journal.close()
    path = tmp_path / "j.jsonl"
    path.write_text(path.read_text() + '{"fp": "fp-2", "row": {"t"')
    assert journal.load() == {"fp-1": {"t": 1}}
    # appending after a torn line starts a fresh journal or keeps the
    # good prefix; either way load() keeps returning valid rows only
    journal.append("fp-3", {"t": 3})
    journal.close()
    assert journal.load()["fp-3"] == {"t": 3}


def test_journal_stale_meta_is_discarded(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl", meta={"grid": "a"})
    journal.append("fp-1", {"t": 1})
    journal.close()
    other = SweepJournal(tmp_path / "j.jsonl", meta={"grid": "b"})
    assert other.load() == {}


def test_journal_reset_discards(tmp_path):
    journal = SweepJournal(tmp_path / "j.jsonl")
    journal.append("fp-1", {"t": 1})
    journal.reset()
    assert journal.load() == {}


# ------------------------------------------------------------- fingerprints
def test_task_fingerprint_distinguishes_tasks_and_configs():
    a = task_fingerprint(GridTask("measure", "length", 2), TINY)
    b = task_fingerprint(GridTask("measure", "length", 3), TINY)
    c = task_fingerprint(
        GridTask("measure", "length", 2), CompilerConfig(word_width=4)
    )
    assert len({a, b, c}) == 3
    assert a == task_fingerprint(GridTask("measure", "length", 2), TINY)


def test_grid_fingerprint_is_order_sensitive():
    tasks = measure_tasks("length", [2, 3])
    assert grid_fingerprint(tasks, TINY) != grid_fingerprint(tasks[::-1], TINY)


# --------------------------------------------------------- run_grid journal
def test_run_grid_checkpoints_and_resumes(tmp_path):
    runner = BenchmarkRunner(TINY)
    tasks = measure_tasks("length", [2, 3])
    journal = SweepJournal.for_grid(tmp_path, "t", tasks, TINY)
    first = runner.run_grid(tasks, journal=journal)
    assert len(first) == 2 and not first.failed_rows
    assert not any(r.get("journal_resumed") for r in first.rows)

    # a fresh runner resuming the same journal recomputes nothing: any
    # attempt to compile would blow up on this broken runner
    class BrokenRunner(BenchmarkRunner):
        def measure(self, *a, **k):
            raise AssertionError("resume must not recompute journaled rows")

    resumed = BrokenRunner(TINY).run_grid(
        tasks,
        journal=SweepJournal.for_grid(tmp_path, "t", tasks, TINY),
        resume=True,
    )
    assert len(resumed) == 2
    assert all(r.get("journal_resumed") for r in resumed.rows)
    stripped = [
        {k: v for k, v in row.items() if k != "journal_resumed"}
        for row in resumed.rows
    ]
    assert stripped == first.rows


def test_run_grid_without_resume_resets_journal(tmp_path):
    runner = BenchmarkRunner(TINY)
    tasks = measure_tasks("length", [2])
    journal = SweepJournal.for_grid(tmp_path, "t", tasks, TINY)
    runner.run_grid(tasks, journal=journal)
    again = BenchmarkRunner(TINY).run_grid(
        tasks, journal=SweepJournal.for_grid(tmp_path, "t", tasks, TINY)
    )
    assert not any(r.get("journal_resumed") for r in again.rows)


def test_run_grid_journal_skips_failure_rows(tmp_path):
    tasks = [TASK]
    runner = FlakyRunner(99)
    runner.config = TINY
    runner.backend = SerialBackend(RetryPolicy(retries=0, backoff_base=0.0))
    journal = SweepJournal.for_grid(tmp_path, "t", tasks, TINY)
    result = BenchmarkRunner.run_grid(runner, tasks, journal=journal)
    assert result.failed_rows
    fresh = SweepJournal.for_grid(tmp_path, "t", tasks, TINY)
    assert fresh.load() == {}  # failed tasks run again on resume
