"""Simulator agreement on the Table-1 benchmark circuits.

Satellite of the fuzzing PR: classical reversible simulation vs. the
statevector semantics on computational-basis inputs for *all* benchmark
programs at depths 2-3 — previously only spot-checked on toy circuits.
The benchmark circuits are 20-140 qubits, far beyond a dense statevector,
so the sparse amplitude-dict path carries the check at full scale; dense
kernels are cross-checked wherever they fit, and the Clifford+T
decomposition is validated end-to-end on basis states as well.
"""

import random

import numpy as np
import pytest

from repro.benchsuite import SOURCES, UNSIZED, BenchmarkRunner
from repro.circuit import classical_sim
from repro.circuit.decompose import to_clifford_t
from repro.circuit.statevector import (
    basis_state,
    run as dense_run,
    sparse_is_basis,
    sparse_run,
    sparse_to_dense,
    states_equal,
)
from repro.config import CompilerConfig

TINY = CompilerConfig(word_width=2, addr_width=2, heap_cells=3)


@pytest.fixture(scope="module")
def runner():
    return BenchmarkRunner(TINY)


def _basis_inputs(num_qubits, count=3, seed=99):
    rng = random.Random(seed)
    return [rng.randrange(1 << num_qubits) for _ in range(count)]


@pytest.mark.parametrize("name", sorted(SOURCES))
@pytest.mark.parametrize("depth", [2, 3])
def test_classical_vs_sparse_statevector(runner, name, depth):
    """Both simulators must map every probed basis state identically."""
    if name in UNSIZED:
        if depth == 3:
            pytest.skip("unsized benchmark has a single instance")
        depth = None
    circuit = runner.compile(name, depth).circuit
    for bits in _basis_inputs(circuit.num_qubits):
        expected = classical_sim.run(circuit, bits)
        amps = sparse_run(circuit, bits)
        assert sparse_is_basis(amps, expected), (name, depth, bits)


@pytest.mark.parametrize("name", ["pop_front", "length-simplified"])
def test_classical_vs_dense_statevector(runner, name):
    """Dense kernels agree too, on the benchmarks small enough to afford."""
    depth = None if name in UNSIZED else 2
    circuit = runner.compile(name, depth).circuit
    assert circuit.num_qubits <= 22
    for bits in _basis_inputs(circuit.num_qubits, count=2):
        expected = classical_sim.run(circuit, bits)
        state = dense_run(circuit, basis_state(circuit.num_qubits, bits))
        assert states_equal(
            state, basis_state(circuit.num_qubits, expected)
        ), (name, bits)


@pytest.mark.parametrize("name", ["length-simplified", "length"])
def test_clifford_t_decomposition_preserves_basis_semantics(runner, name):
    """The Figure 5/6 expansion fixes the same basis map (ancillae at |0>)."""
    circuit = runner.compile(name, 2).circuit
    expanded = to_clifford_t(circuit)
    for bits in _basis_inputs(circuit.num_qubits, count=2):
        expected = classical_sim.run(circuit, bits)
        amps = sparse_run(expanded, bits)
        assert sparse_is_basis(amps, expected), (name, bits)


class TestSparseKernels:
    """Sparse-vs-dense agreement on small circuits with superposition."""

    def test_sparse_matches_dense_on_random_clifford_t(self):
        from repro.circuit import Circuit, cnot, h, s as s_gate, t as t_gate, toffoli, x

        rng = random.Random(5)
        gates = []
        for _ in range(60):
            q = rng.randrange(4)
            gates.append(
                rng.choice(
                    [
                        x(q),
                        h(q),
                        t_gate(q),
                        s_gate(q),
                        cnot(q, (q + 1) % 4),
                        toffoli(q, (q + 1) % 4, (q + 2) % 4),
                    ]
                )
            )
        circuit = Circuit(4, gates)
        for bits in range(4):
            dense = dense_run(circuit, basis_state(4, bits))
            sparse = sparse_to_dense(sparse_run(circuit, bits), 4)
            assert np.allclose(dense, sparse, atol=1e-9), bits

    def test_support_cap_enforced(self):
        from repro.circuit import Circuit, h
        from repro.errors import SimulationError

        circuit = Circuit(6, [h(q) for q in range(6)])
        with pytest.raises(SimulationError):
            sparse_run(circuit, 0, support_cap=8)

    def test_sparse_controlled_gates(self):
        from repro.circuit import Circuit, h, mcx, swap, t as t_gate

        gate_sets = [
            [mcx([0, 1], 2)],
            [swap(0, 2).with_extra_controls([1])],
            [h(0), t_gate(0).with_extra_controls([1]), h(0)],
            [h(1), h(1)],
        ]
        for gates in gate_sets:
            circuit = Circuit(3, gates)
            for bits in range(8):
                dense = dense_run(circuit, basis_state(3, bits))
                sparse = sparse_to_dense(sparse_run(circuit, bits), 3)
                assert np.allclose(dense, sparse, atol=1e-9), (gates, bits)
